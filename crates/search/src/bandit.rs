//! [`DecomposedBandit`]: per-level multi-armed bandits over the shared
//! candidate space. The joint assignment problem factorises into one bandit
//! per V/F level — each level keeps count/mean statistics per candidate and
//! picks its arm with UCB1 or ε-greedy, with the shared Eq. (1) reward
//! credited to every level's chosen arm.

use crate::optimizer::{AssignmentSpace, BestTracker, Optimizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Arm-selection policy of each per-level bandit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BanditPolicy {
    /// UCB1: `mean + exploration · sqrt(ln(total) / count)`, unexplored arms
    /// first. Because every level is credited with the one shared reward, a
    /// fully deterministic per-level argmax can lock the levels into a
    /// correlated proposal cycle whose conditional means are self-consistent
    /// but wrong; `dither` mixes in a small per-level probability of a
    /// uniformly random arm, which decorrelates the credit estimates.
    Ucb1 {
        /// Exploration coefficient (√2 is the textbook value; the Eq. (1)
        /// rewards live in roughly `[0, 2]`, so 1.0 works well).
        exploration: f64,
        /// Per-level probability of proposing a random arm instead of the
        /// UCB argmax.
        dither: f64,
    },
    /// ε-greedy: a random arm with probability ε, else the best mean
    /// (unexplored arms first).
    EpsilonGreedy {
        /// Exploration probability per level and proposal.
        epsilon: f64,
    },
}

/// Configuration of the decomposed bandit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BanditConfig {
    /// Arm-selection policy shared by every level.
    pub policy: BanditPolicy,
    /// Evaluation budget over which the UCB dither (or ε) anneals linearly
    /// to 0. The schedule counts *distinct observed assignments* — the same
    /// quantity the budget-matched [`crate::SearchDriver`] charges its
    /// budget in — so replayed cache-hit observations never advance it:
    /// the effective exploration probability is
    /// `dither · max(0, 1 − distinct / budget)`, reaching 0 (pure
    /// deterministic UCB/greedy argmax proposals) exactly when the
    /// evaluation budget is genuinely spent. `None` keeps the probability
    /// constant (the pre-annealing behaviour).
    pub anneal_budget: Option<u64>,
}

impl Default for BanditConfig {
    fn default() -> Self {
        Self {
            policy: BanditPolicy::Ucb1 {
                exploration: 1.0,
                dither: 0.1,
            },
            anneal_budget: None,
        }
    }
}

impl BanditConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.anneal_budget == Some(0) {
            return Err("anneal_budget must be positive when set".into());
        }
        match self.policy {
            BanditPolicy::Ucb1 {
                exploration,
                dither,
            } => {
                if !(exploration.is_finite() && exploration >= 0.0) {
                    return Err("UCB1 exploration must be finite and non-negative".into());
                }
                if !(0.0..=1.0).contains(&dither) {
                    return Err("UCB1 dither must be in [0, 1]".into());
                }
            }
            BanditPolicy::EpsilonGreedy { epsilon } => {
                if !(0.0..=1.0).contains(&epsilon) {
                    return Err("epsilon must be in [0, 1]".into());
                }
            }
        }
        Ok(())
    }
}

/// Count/mean statistics of one level's arms.
#[derive(Debug, Clone)]
struct LevelArms {
    counts: Vec<u64>,
    means: Vec<f64>,
}

impl LevelArms {
    fn new(num_candidates: usize) -> Self {
        Self {
            counts: vec![0; num_candidates],
            means: vec![0.0; num_candidates],
        }
    }

    /// Arm with the highest mean among explored arms (lowest index on
    /// ties), `None` while every arm is unexplored.
    fn greedy(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (arm, (&count, &mean)) in self.counts.iter().zip(&self.means).enumerate() {
            if count == 0 {
                continue;
            }
            match best {
                Some((_, best_mean)) if mean <= best_mean => {}
                _ => best = Some((arm, mean)),
            }
        }
        best.map(|(arm, _)| arm)
    }
}

/// Per-level UCB1 / ε-greedy bandit optimizer.
#[derive(Debug, Clone)]
pub struct DecomposedBandit {
    space: AssignmentSpace,
    config: BanditConfig,
    rng: StdRng,
    levels: Vec<LevelArms>,
    observations: u64,
    /// Distinct assignments observed so far — the annealing clock (only
    /// tracked when `anneal_budget` is set).
    seen: std::collections::HashSet<Vec<usize>>,
    tracker: BestTracker,
}

impl DecomposedBandit {
    /// Creates the optimizer with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(space: AssignmentSpace, config: BanditConfig, seed: u64) -> Self {
        config.validate().expect("invalid bandit configuration");
        Self {
            space,
            config,
            rng: StdRng::seed_from_u64(seed),
            levels: (0..space.num_levels)
                .map(|_| LevelArms::new(space.num_candidates))
                .collect(),
            observations: 0,
            seen: std::collections::HashSet::new(),
            tracker: BestTracker::new(),
        }
    }

    /// UCB1 with the default exploration coefficient.
    pub fn for_space(space: AssignmentSpace, seed: u64) -> Self {
        Self::new(space, BanditConfig::default(), seed)
    }

    /// UCB1 with the default exploration coefficient and the dither
    /// annealed linearly to 0 over `budget` distinct observed assignments
    /// (the quantity the budget-matched driver charges as evaluations).
    pub fn for_space_with_budget(space: AssignmentSpace, seed: u64, budget: u64) -> Self {
        Self::new(
            space,
            BanditConfig {
                anneal_budget: Some(budget),
                ..BanditConfig::default()
            },
            seed,
        )
    }

    /// Linear annealing factor in `[0, 1]`: 1 with no budget configured or
    /// at the first proposal, 0 once the number of *distinct* observed
    /// assignments reaches the budget. Counting distinct assignments (not
    /// raw `observe` calls) keeps the clock aligned with the budget-matched
    /// driver, which replays cached proposals through `observe` for free —
    /// and because the dither itself is what generates novel proposals, the
    /// schedule can only complete when the budget is genuinely spent.
    fn exploration_scale(&self) -> f64 {
        match self.config.anneal_budget {
            Some(budget) => (1.0 - self.seen.len() as f64 / budget as f64).max(0.0),
            None => 1.0,
        }
    }

    /// A random arm among the still-unexplored ones of `level`, `None` when
    /// all are explored.
    fn random_unexplored(&mut self, level: usize) -> Option<usize> {
        let unexplored: Vec<usize> = self.levels[level]
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == 0)
            .map(|(arm, _)| arm)
            .collect();
        if unexplored.is_empty() {
            None
        } else {
            Some(unexplored[self.rng.gen_range(0..unexplored.len())])
        }
    }

    fn pick_arm(&mut self, level: usize) -> usize {
        let scale = self.exploration_scale();
        match self.config.policy {
            BanditPolicy::Ucb1 {
                exploration,
                dither,
            } => {
                let dither = dither * scale;
                if dither > 0.0 && self.rng.gen::<f64>() < dither {
                    return self.rng.gen_range(0..self.space.num_candidates);
                }
                if let Some(arm) = self.random_unexplored(level) {
                    return arm;
                }
                let total = self.observations.max(1) as f64;
                let arms = &self.levels[level];
                let mut best_arm = 0;
                let mut best_score = f64::NEG_INFINITY;
                for (arm, (&count, &mean)) in arms.counts.iter().zip(&arms.means).enumerate() {
                    let bonus = exploration * (total.ln() / count as f64).sqrt();
                    let score = mean + bonus;
                    if score > best_score {
                        best_score = score;
                        best_arm = arm;
                    }
                }
                best_arm
            }
            BanditPolicy::EpsilonGreedy { epsilon } => {
                if self.rng.gen::<f64>() < epsilon * scale {
                    return self.rng.gen_range(0..self.space.num_candidates);
                }
                if let Some(arm) = self.random_unexplored(level) {
                    return arm;
                }
                self.levels[level].greedy().unwrap_or(0)
            }
        }
    }
}

impl Optimizer for DecomposedBandit {
    fn name(&self) -> &'static str {
        "bandit"
    }

    fn space(&self) -> AssignmentSpace {
        self.space
    }

    fn propose(&mut self) -> Vec<usize> {
        (0..self.space.num_levels)
            .map(|level| self.pick_arm(level))
            .collect()
    }

    fn observe(&mut self, actions: &[usize], reward: f64, meets_constraint: bool) {
        self.tracker.offer(actions, reward, meets_constraint);
        self.observations += 1;
        if self.config.anneal_budget.is_some() && !self.seen.contains(actions) {
            self.seen.insert(actions.to_vec());
        }
        for (level, &arm) in actions.iter().enumerate() {
            if level >= self.levels.len() || arm >= self.space.num_candidates {
                continue;
            }
            let arms = &mut self.levels[level];
            arms.counts[arm] += 1;
            let count = arms.counts[arm] as f64;
            arms.means[arm] += (reward - arms.means[arm]) / count;
        }
    }

    /// The decomposed read-out: each level's greedy arm — a combination the
    /// bandit may never have proposed jointly, which is exactly what the
    /// factorised statistics buy. Falls back to the best observed assignment
    /// while some level is still fully unexplored.
    fn best(&self) -> Option<Vec<usize>> {
        let greedy: Option<Vec<usize>> = self.levels.iter().map(LevelArms::greedy).collect();
        greedy.or_else(|| self.tracker.best_actions().map(<[usize]>::to_vec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy objective: per level, the reward contribution of arm `a` is
    /// highest for the middle arm, so the optimum is not on the boundary.
    fn reward_of(actions: &[usize], num_candidates: usize) -> f64 {
        let target = num_candidates / 2;
        actions
            .iter()
            .map(|&a| 1.0 - (a as f64 - target as f64).abs() / num_candidates as f64)
            .sum::<f64>()
    }

    fn drive(mut bandit: DecomposedBandit, rounds: usize) -> DecomposedBandit {
        let n = bandit.space.num_candidates;
        for _ in 0..rounds {
            let a = bandit.propose();
            let r = reward_of(&a, n);
            bandit.observe(&a, r, true);
        }
        bandit
    }

    #[test]
    fn ucb_explores_every_arm_then_exploits_the_target() {
        let space = AssignmentSpace::new(3, 5);
        let bandit = drive(DecomposedBandit::for_space(space, 17), 600);
        for level in &bandit.levels {
            assert!(level.counts.iter().all(|&c| c > 0), "all arms explored");
        }
        assert_eq!(bandit.best(), Some(vec![2, 2, 2]));
    }

    #[test]
    fn epsilon_greedy_also_finds_the_target() {
        let space = AssignmentSpace::new(2, 5);
        let bandit = DecomposedBandit::new(
            space,
            BanditConfig {
                policy: BanditPolicy::EpsilonGreedy { epsilon: 0.2 },
                anneal_budget: None,
            },
            23,
        );
        let bandit = drive(bandit, 150);
        assert_eq!(bandit.best(), Some(vec![2, 2]));
    }

    /// The `index`-th assignment of `space` in lexicographic order (the
    /// enumeration `Exhaustive` walks).
    fn assignment(space: AssignmentSpace, index: usize) -> Vec<usize> {
        let mut digits = Vec::with_capacity(space.num_levels);
        let mut rest = index;
        for _ in 0..space.num_levels {
            digits.push(rest % space.num_candidates);
            rest /= space.num_candidates;
        }
        digits
    }

    /// Feeds every distinct assignment of the space once, as the
    /// budget-matched driver would (each charged evaluation observed once).
    fn feed_full_space(bandit: &mut DecomposedBandit) {
        let space = bandit.space;
        let n = space.num_candidates;
        for i in 0..space.size().expect("small space") {
            let a = assignment(space, i);
            let r = reward_of(&a, n);
            bandit.observe(&a, r, true);
        }
    }

    #[test]
    fn annealed_epsilon_makes_late_budget_proposals_greedy() {
        let space = AssignmentSpace::new(3, 5);
        let budget = space.size().expect("small space") as u64; // 125 distinct assignments
        let mut bandit = DecomposedBandit::new(
            space,
            BanditConfig {
                policy: BanditPolicy::EpsilonGreedy { epsilon: 0.5 },
                anneal_budget: Some(budget),
            },
            17,
        );
        // the clock counts distinct assignments: replaying one does not
        // advance it
        let first = assignment(space, 0);
        bandit.observe(&first, reward_of(&first, space.num_candidates), true);
        bandit.observe(&first, reward_of(&first, space.num_candidates), true);
        assert!(
            (bandit.exploration_scale() - (1.0 - 1.0 / budget as f64)).abs() < 1e-12,
            "a replayed observation must not advance the annealing clock"
        );
        feed_full_space(&mut bandit);
        // budget exhausted: exploration has annealed to exactly 0, so every
        // proposal is each level's greedy (highest-mean) arm — the best()
        // read-out — with no random deviation left
        assert_eq!(bandit.exploration_scale(), 0.0);
        let greedy = bandit.best().expect("all levels explored");
        assert_eq!(greedy, vec![2, 2, 2], "middle arm is the optimum");
        for _ in 0..50 {
            let proposal = bandit.propose();
            assert_eq!(
                proposal, greedy,
                "late-budget proposals must be greedy, not dithered"
            );
        }
    }

    #[test]
    fn annealed_ucb_dither_goes_deterministic_at_budget_exhaustion() {
        let space = AssignmentSpace::new(3, 5);
        let budget = space.size().expect("small space") as u64;
        let mut annealed = DecomposedBandit::for_space_with_budget(space, 17, budget);
        feed_full_space(&mut annealed);
        assert_eq!(annealed.exploration_scale(), 0.0);
        // zero dither: proposals are the pure UCB argmax, identical across
        // repeated calls (no randomness is consumed at all)
        let first = annealed.propose();
        for _ in 0..50 {
            assert_eq!(annealed.propose(), first, "no dithered deviation");
        }
        // an un-annealed bandit with the same statistics still dithers:
        // across 50 proposals at dither 0.1 per level, a deviation is
        // near-certain
        let mut constant = DecomposedBandit::for_space(space, 17);
        feed_full_space(&mut constant);
        assert_eq!(constant.exploration_scale(), 1.0);
        let baseline = constant.propose();
        let deviated = (0..50).any(|_| constant.propose() != baseline);
        assert!(deviated, "constant dither should still explore");
    }

    #[test]
    fn annealing_cannot_finish_while_novel_assignments_remain() {
        // mid-schedule the dither is merely reduced, and a budget larger
        // than the space can never fully anneal — exploration survives
        // until the budget is genuinely unspendable
        let space = AssignmentSpace::new(2, 3); // 9 assignments
        let mut bandit = DecomposedBandit::for_space_with_budget(space, 5, 20);
        feed_full_space(&mut bandit);
        assert!(
            (bandit.exploration_scale() - (1.0 - 9.0 / 20.0)).abs() < 1e-12,
            "the clock advances only as far as the space allows"
        );
    }

    #[test]
    fn greedy_readout_breaks_ties_towards_the_lowest_index() {
        let mut arms = LevelArms::new(3);
        arms.counts = vec![2, 2, 0];
        arms.means = vec![0.5, 0.5, 0.0];
        assert_eq!(arms.greedy(), Some(0));
    }
}
