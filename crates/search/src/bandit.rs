//! [`DecomposedBandit`]: per-level multi-armed bandits over the shared
//! candidate space. The joint assignment problem factorises into one bandit
//! per V/F level — each level keeps count/mean statistics per candidate and
//! picks its arm with UCB1 or ε-greedy, with the shared Eq. (1) reward
//! credited to every level's chosen arm.

use crate::optimizer::{AssignmentSpace, BestTracker, Optimizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Arm-selection policy of each per-level bandit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BanditPolicy {
    /// UCB1: `mean + exploration · sqrt(ln(total) / count)`, unexplored arms
    /// first. Because every level is credited with the one shared reward, a
    /// fully deterministic per-level argmax can lock the levels into a
    /// correlated proposal cycle whose conditional means are self-consistent
    /// but wrong; `dither` mixes in a small per-level probability of a
    /// uniformly random arm, which decorrelates the credit estimates.
    Ucb1 {
        /// Exploration coefficient (√2 is the textbook value; the Eq. (1)
        /// rewards live in roughly `[0, 2]`, so 1.0 works well).
        exploration: f64,
        /// Per-level probability of proposing a random arm instead of the
        /// UCB argmax.
        dither: f64,
    },
    /// ε-greedy: a random arm with probability ε, else the best mean
    /// (unexplored arms first).
    EpsilonGreedy {
        /// Exploration probability per level and proposal.
        epsilon: f64,
    },
}

/// Configuration of the decomposed bandit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BanditConfig {
    /// Arm-selection policy shared by every level.
    pub policy: BanditPolicy,
}

impl Default for BanditConfig {
    fn default() -> Self {
        Self {
            policy: BanditPolicy::Ucb1 {
                exploration: 1.0,
                dither: 0.1,
            },
        }
    }
}

impl BanditConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match self.policy {
            BanditPolicy::Ucb1 {
                exploration,
                dither,
            } => {
                if !(exploration.is_finite() && exploration >= 0.0) {
                    return Err("UCB1 exploration must be finite and non-negative".into());
                }
                if !(0.0..=1.0).contains(&dither) {
                    return Err("UCB1 dither must be in [0, 1]".into());
                }
            }
            BanditPolicy::EpsilonGreedy { epsilon } => {
                if !(0.0..=1.0).contains(&epsilon) {
                    return Err("epsilon must be in [0, 1]".into());
                }
            }
        }
        Ok(())
    }
}

/// Count/mean statistics of one level's arms.
#[derive(Debug, Clone)]
struct LevelArms {
    counts: Vec<u64>,
    means: Vec<f64>,
}

impl LevelArms {
    fn new(num_candidates: usize) -> Self {
        Self {
            counts: vec![0; num_candidates],
            means: vec![0.0; num_candidates],
        }
    }

    /// Arm with the highest mean among explored arms (lowest index on
    /// ties), `None` while every arm is unexplored.
    fn greedy(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (arm, (&count, &mean)) in self.counts.iter().zip(&self.means).enumerate() {
            if count == 0 {
                continue;
            }
            match best {
                Some((_, best_mean)) if mean <= best_mean => {}
                _ => best = Some((arm, mean)),
            }
        }
        best.map(|(arm, _)| arm)
    }
}

/// Per-level UCB1 / ε-greedy bandit optimizer.
#[derive(Debug, Clone)]
pub struct DecomposedBandit {
    space: AssignmentSpace,
    config: BanditConfig,
    rng: StdRng,
    levels: Vec<LevelArms>,
    observations: u64,
    tracker: BestTracker,
}

impl DecomposedBandit {
    /// Creates the optimizer with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(space: AssignmentSpace, config: BanditConfig, seed: u64) -> Self {
        config.validate().expect("invalid bandit configuration");
        Self {
            space,
            config,
            rng: StdRng::seed_from_u64(seed),
            levels: (0..space.num_levels)
                .map(|_| LevelArms::new(space.num_candidates))
                .collect(),
            observations: 0,
            tracker: BestTracker::new(),
        }
    }

    /// UCB1 with the default exploration coefficient.
    pub fn for_space(space: AssignmentSpace, seed: u64) -> Self {
        Self::new(space, BanditConfig::default(), seed)
    }

    /// A random arm among the still-unexplored ones of `level`, `None` when
    /// all are explored.
    fn random_unexplored(&mut self, level: usize) -> Option<usize> {
        let unexplored: Vec<usize> = self.levels[level]
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == 0)
            .map(|(arm, _)| arm)
            .collect();
        if unexplored.is_empty() {
            None
        } else {
            Some(unexplored[self.rng.gen_range(0..unexplored.len())])
        }
    }

    fn pick_arm(&mut self, level: usize) -> usize {
        match self.config.policy {
            BanditPolicy::Ucb1 {
                exploration,
                dither,
            } => {
                if dither > 0.0 && self.rng.gen::<f64>() < dither {
                    return self.rng.gen_range(0..self.space.num_candidates);
                }
                if let Some(arm) = self.random_unexplored(level) {
                    return arm;
                }
                let total = self.observations.max(1) as f64;
                let arms = &self.levels[level];
                let mut best_arm = 0;
                let mut best_score = f64::NEG_INFINITY;
                for (arm, (&count, &mean)) in arms.counts.iter().zip(&arms.means).enumerate() {
                    let bonus = exploration * (total.ln() / count as f64).sqrt();
                    let score = mean + bonus;
                    if score > best_score {
                        best_score = score;
                        best_arm = arm;
                    }
                }
                best_arm
            }
            BanditPolicy::EpsilonGreedy { epsilon } => {
                if self.rng.gen::<f64>() < epsilon {
                    return self.rng.gen_range(0..self.space.num_candidates);
                }
                if let Some(arm) = self.random_unexplored(level) {
                    return arm;
                }
                self.levels[level].greedy().unwrap_or(0)
            }
        }
    }
}

impl Optimizer for DecomposedBandit {
    fn name(&self) -> &'static str {
        "bandit"
    }

    fn space(&self) -> AssignmentSpace {
        self.space
    }

    fn propose(&mut self) -> Vec<usize> {
        (0..self.space.num_levels)
            .map(|level| self.pick_arm(level))
            .collect()
    }

    fn observe(&mut self, actions: &[usize], reward: f64, meets_constraint: bool) {
        self.tracker.offer(actions, reward, meets_constraint);
        self.observations += 1;
        for (level, &arm) in actions.iter().enumerate() {
            if level >= self.levels.len() || arm >= self.space.num_candidates {
                continue;
            }
            let arms = &mut self.levels[level];
            arms.counts[arm] += 1;
            let count = arms.counts[arm] as f64;
            arms.means[arm] += (reward - arms.means[arm]) / count;
        }
    }

    /// The decomposed read-out: each level's greedy arm — a combination the
    /// bandit may never have proposed jointly, which is exactly what the
    /// factorised statistics buy. Falls back to the best observed assignment
    /// while some level is still fully unexplored.
    fn best(&self) -> Option<Vec<usize>> {
        let greedy: Option<Vec<usize>> = self.levels.iter().map(LevelArms::greedy).collect();
        greedy.or_else(|| self.tracker.best_actions().map(<[usize]>::to_vec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy objective: per level, the reward contribution of arm `a` is
    /// highest for the middle arm, so the optimum is not on the boundary.
    fn reward_of(actions: &[usize], num_candidates: usize) -> f64 {
        let target = num_candidates / 2;
        actions
            .iter()
            .map(|&a| 1.0 - (a as f64 - target as f64).abs() / num_candidates as f64)
            .sum::<f64>()
    }

    fn drive(mut bandit: DecomposedBandit, rounds: usize) -> DecomposedBandit {
        let n = bandit.space.num_candidates;
        for _ in 0..rounds {
            let a = bandit.propose();
            let r = reward_of(&a, n);
            bandit.observe(&a, r, true);
        }
        bandit
    }

    #[test]
    fn ucb_explores_every_arm_then_exploits_the_target() {
        let space = AssignmentSpace::new(3, 5);
        let bandit = drive(DecomposedBandit::for_space(space, 17), 600);
        for level in &bandit.levels {
            assert!(level.counts.iter().all(|&c| c > 0), "all arms explored");
        }
        assert_eq!(bandit.best(), Some(vec![2, 2, 2]));
    }

    #[test]
    fn epsilon_greedy_also_finds_the_target() {
        let space = AssignmentSpace::new(2, 5);
        let bandit = DecomposedBandit::new(
            space,
            BanditConfig {
                policy: BanditPolicy::EpsilonGreedy { epsilon: 0.2 },
            },
            23,
        );
        let bandit = drive(bandit, 150);
        assert_eq!(bandit.best(), Some(vec![2, 2]));
    }

    #[test]
    fn greedy_readout_breaks_ties_towards_the_lowest_index() {
        let mut arms = LevelArms::new(3);
        arms.counts = vec![2, 2, 0];
        arms.means = vec![0.5, 0.5, 0.0];
        assert_eq!(arms.greedy(), Some(0));
    }
}
