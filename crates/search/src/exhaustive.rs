//! [`Exhaustive`]: lexicographic enumeration of the whole assignment space.
//! Feasible only for small spaces, where it supplies the ground-truth
//! optimum the comparison report measures every other optimizer against.

use crate::optimizer::{AssignmentSpace, BestTracker, Optimizer};

/// Exhaustive lexicographic enumeration (last level advances fastest).
/// After the full space has been proposed once the counter wraps around;
/// the driver's proposal cap (or its cache, which makes revisits free)
/// bounds the run.
#[derive(Debug, Clone)]
pub struct Exhaustive {
    space: AssignmentSpace,
    next: Vec<usize>,
    wrapped: bool,
    tracker: BestTracker,
}

impl Exhaustive {
    /// Starts the enumeration at the all-zeros assignment.
    pub fn new(space: AssignmentSpace) -> Self {
        Self {
            space,
            next: vec![0; space.num_levels],
            wrapped: false,
            tracker: BestTracker::new(),
        }
    }

    /// Whether the whole space has been proposed at least once.
    pub fn exhausted(&self) -> bool {
        self.wrapped
    }
}

impl Optimizer for Exhaustive {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn space(&self) -> AssignmentSpace {
        self.space
    }

    fn propose(&mut self) -> Vec<usize> {
        let current = self.next.clone();
        // mixed-radix increment, least-significant (last) level first
        for level in (0..self.space.num_levels).rev() {
            self.next[level] += 1;
            if self.next[level] < self.space.num_candidates {
                return current;
            }
            self.next[level] = 0;
        }
        self.wrapped = true;
        current
    }

    fn observe(&mut self, actions: &[usize], reward: f64, meets_constraint: bool) {
        self.tracker.offer(actions, reward, meets_constraint);
    }

    fn best(&self) -> Option<Vec<usize>> {
        self.tracker.best_actions().map(<[usize]>::to_vec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn enumerates_every_assignment_exactly_once_then_wraps() {
        let space = AssignmentSpace::new(3, 3);
        let mut exhaustive = Exhaustive::new(space);
        let mut seen = HashSet::new();
        for _ in 0..27 {
            assert!(!exhaustive.exhausted());
            let a = exhaustive.propose();
            assert!(space.contains(&a));
            assert!(seen.insert(a), "no repeats inside the first sweep");
        }
        assert!(exhaustive.exhausted());
        assert_eq!(seen.len(), 27);
        assert_eq!(exhaustive.propose(), vec![0, 0, 0], "wraps to the start");
    }

    #[test]
    fn finds_the_exact_optimum_of_a_toy_objective() {
        let space = AssignmentSpace::new(2, 4);
        let mut exhaustive = Exhaustive::new(space);
        for _ in 0..16 {
            let a = exhaustive.propose();
            // unique optimum at [1, 3]
            let r = -((a[0] as f64 - 1.0).powi(2) + (a[1] as f64 - 3.0).powi(2));
            exhaustive.observe(&a, r, true);
        }
        assert_eq!(exhaustive.best(), Some(vec![1, 3]));
    }
}
