//! The [`Optimizer`] trait and the [`AssignmentSpace`] it searches.

use serde::{Deserialize, Serialize};

/// Shape of the Level-2 assignment space: one decision per V/F level, each
/// picking one of the shared candidate pattern sets. An assignment is a
/// `Vec<usize>` of length [`num_levels`](Self::num_levels) whose entries are
/// `< num_candidates`, ordered from the highest-frequency level (M1) to the
/// lowest, exactly as `rt3-core` evaluates them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssignmentSpace {
    /// Number of decisions per assignment (one per V/F level).
    pub num_levels: usize,
    /// Number of candidate pattern sets available at every level.
    pub num_candidates: usize,
}

impl AssignmentSpace {
    /// Creates the space, panicking on degenerate shapes.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(num_levels: usize, num_candidates: usize) -> Self {
        assert!(
            num_levels > 0 && num_candidates > 0,
            "assignment space must have at least one level and one candidate"
        );
        Self {
            num_levels,
            num_candidates,
        }
    }

    /// Total number of assignments, `None` when it overflows `usize`.
    pub fn size(&self) -> Option<usize> {
        self.num_candidates.checked_pow(self.num_levels as u32)
    }

    /// Whether `actions` is a valid assignment of this space.
    pub fn contains(&self, actions: &[usize]) -> bool {
        actions.len() == self.num_levels && actions.iter().all(|&a| a < self.num_candidates)
    }
}

/// A Level-2 search strategy: proposes assignments, learns from their
/// rewards, and recommends a final assignment.
///
/// The contract the [`SearchDriver`](crate::SearchDriver) relies on:
///
/// * [`propose`](Self::propose) returns a valid assignment of
///   [`space`](Self::space) (the driver asserts this);
/// * [`observe`](Self::observe) is called exactly once after every
///   `propose`, with the proposed assignment and its reward — repeated
///   assignments are served from the driver's cache, so `observe` may see
///   the same `(actions, reward)` pair many times;
/// * [`best`](Self::best) is the optimizer's recommendation given
///   everything observed so far. It need not be an assignment that was ever
///   proposed: [`Reinforce`](crate::Reinforce) returns the greedy policy
///   read-out (matching the paper's final architecture derivation) and
///   [`DecomposedBandit`](crate::DecomposedBandit) combines each level's
///   greedy arm; the remaining implementations return the best observed
///   assignment (feasible preferred).
///
/// All implementations in this crate are deterministic for a fixed seed and
/// a fixed sequence of observed rewards.
pub trait Optimizer {
    /// Short stable identifier, used in reports and JSON output.
    fn name(&self) -> &'static str;

    /// The space this optimizer proposes assignments from.
    fn space(&self) -> AssignmentSpace;

    /// Proposes the next assignment to evaluate.
    fn propose(&mut self) -> Vec<usize>;

    /// Feeds back the reward of a proposed assignment and whether it met
    /// the timing constraint.
    fn observe(&mut self, actions: &[usize], reward: f64, meets_constraint: bool);

    /// The optimizer's current recommendation, `None` before any
    /// observation.
    fn best(&self) -> Option<Vec<usize>>;
}

/// Tracks the best observed assignment with feasibility-first ordering: a
/// constraint-meeting assignment always beats an infeasible one, ties in
/// feasibility are broken by strictly greater reward, and exact reward ties
/// keep the earliest assignment (deterministic).
#[derive(Debug, Clone, Default)]
pub struct BestTracker {
    best: Option<(Vec<usize>, f64, bool)>,
}

impl BestTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers one observation; returns `true` when it became the new best.
    pub fn offer(&mut self, actions: &[usize], reward: f64, meets_constraint: bool) -> bool {
        let improves = match &self.best {
            None => true,
            Some((_, best_reward, best_feasible)) => {
                (meets_constraint, reward) > (*best_feasible, *best_reward)
            }
        };
        if improves {
            self.best = Some((actions.to_vec(), reward, meets_constraint));
        }
        improves
    }

    /// The best assignment so far.
    pub fn best_actions(&self) -> Option<&[usize]> {
        self.best.as_ref().map(|(a, _, _)| a.as_slice())
    }

    /// Reward of the best assignment so far.
    pub fn best_reward(&self) -> Option<f64> {
        self.best.as_ref().map(|(_, r, _)| *r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_size_and_membership() {
        let space = AssignmentSpace::new(3, 4);
        assert_eq!(space.size(), Some(64));
        assert!(space.contains(&[0, 3, 2]));
        assert!(!space.contains(&[0, 4, 2]));
        assert!(!space.contains(&[0, 1]));
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn degenerate_space_is_rejected() {
        let _ = AssignmentSpace::new(0, 4);
    }

    #[test]
    fn tracker_prefers_feasible_then_reward_then_first() {
        let mut t = BestTracker::new();
        assert!(t.offer(&[0], 5.0, false));
        // feasible beats higher infeasible reward
        assert!(t.offer(&[1], 1.0, true));
        assert!(!t.offer(&[2], 9.0, false));
        // higher feasible reward wins
        assert!(t.offer(&[3], 2.0, true));
        // exact tie keeps the earlier assignment
        assert!(!t.offer(&[4], 2.0, true));
        assert_eq!(t.best_actions(), Some(&[3][..]));
        assert_eq!(t.best_reward(), Some(2.0));
    }
}
