//! Memoized assignment evaluations, so optimizers that re-propose an
//! assignment (the RL controller does this routinely once its policy
//! sharpens) get the cached result for free and every optimizer pays for
//! the same number of *distinct* evaluations at equal budget.

use std::collections::HashMap;

/// Assignment → evaluation cache with hit/miss accounting.
#[derive(Debug, Clone, Default)]
pub struct EvaluationCache<T> {
    map: HashMap<Vec<usize>, T>,
    hits: usize,
    misses: usize,
}

impl<T> EvaluationCache<T> {
    /// Empty cache.
    pub fn new() -> Self {
        Self {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the cached evaluation of `actions`, running `evaluate` on a
    /// miss. The boolean is `true` on a hit.
    pub fn get_or_insert_with(
        &mut self,
        actions: &[usize],
        evaluate: impl FnOnce() -> T,
    ) -> (&T, bool) {
        if self.map.contains_key(actions) {
            self.hits += 1;
            (&self.map[actions], true)
        } else {
            self.misses += 1;
            let value = evaluate();
            (self.map.entry(actions.to_vec()).or_insert(value), false)
        }
    }

    /// The cached evaluation of `actions`, if present (does not touch the
    /// hit/miss counters).
    pub fn peek(&self, actions: &[usize]) -> Option<&T> {
        self.map.get(actions)
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of lookups that ran the evaluation (== distinct assignments
    /// evaluated).
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Number of distinct assignments stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing has been evaluated yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Fraction of lookups answered from the cache (`0.0` before the first
    /// lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoizes_and_counts() {
        let mut cache = EvaluationCache::new();
        let mut evaluations = 0;
        for _ in 0..3 {
            let (v, _) = cache.get_or_insert_with(&[1, 2], || {
                evaluations += 1;
                42
            });
            assert_eq!(*v, 42);
        }
        let (_, hit) = cache.get_or_insert_with(&[2, 1], || {
            evaluations += 1;
            7
        });
        assert!(!hit);
        assert_eq!(evaluations, 2);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.peek(&[1, 2]), Some(&42));
        assert_eq!(cache.peek(&[9, 9]), None);
    }
}
