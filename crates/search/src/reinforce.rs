//! [`Reinforce`]: the paper's RL search (component ②) behind the
//! [`Optimizer`] trait — a thin adapter over the unchanged
//! [`rt3_rl::Controller`], so `rt3-core::run_level2_search` routed through
//! the driver stays bit-identical to the pre-trait implementation.

use crate::optimizer::{AssignmentSpace, Optimizer};
use rt3_rl::{Controller, ControllerConfig, Episode};

/// REINFORCE policy-gradient optimizer wrapping the RNN controller.
#[derive(Debug, Clone)]
pub struct Reinforce {
    controller: Controller,
    /// The episode of the last `propose`, kept so `observe` can hand the
    /// controller the action probabilities its update needs.
    pending: Option<Episode>,
    space: AssignmentSpace,
    /// Whether anything has been observed yet — the trait contract says
    /// `best()` is `None` before the first observation, and an untrained
    /// policy's greedy roll-out is noise anyway.
    observed: bool,
}

impl Reinforce {
    /// Wraps a controller built from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: ControllerConfig) -> Self {
        let space = AssignmentSpace::new(config.steps, config.actions_per_step);
        Self {
            controller: Controller::new(config),
            pending: None,
            space,
            observed: false,
        }
    }

    /// The Level-2 default: the exact controller hyper-parameters
    /// `run_level2_search` has always used (hidden 16, learning rate 5e-2,
    /// baseline decay 0.8).
    pub fn for_space(space: AssignmentSpace, seed: u64) -> Self {
        Self::new(ControllerConfig {
            steps: space.num_levels,
            actions_per_step: space.num_candidates,
            hidden_dim: 16,
            learning_rate: 5e-2,
            baseline_decay: 0.8,
            seed,
        })
    }

    /// The wrapped controller (read-only; mutating it would desynchronise
    /// the pending episode).
    pub fn controller(&self) -> &Controller {
        &self.controller
    }
}

impl Optimizer for Reinforce {
    fn name(&self) -> &'static str {
        "reinforce"
    }

    fn space(&self) -> AssignmentSpace {
        self.space
    }

    fn propose(&mut self) -> Vec<usize> {
        let episode = self.controller.sample_episode();
        let actions = episode.actions.clone();
        self.pending = Some(episode);
        actions
    }

    fn observe(&mut self, actions: &[usize], reward: f64, _meets_constraint: bool) {
        self.observed = true;
        // REINFORCE ignores the constraint flag: infeasibility is already
        // priced into the Eq. (1) reward, exactly as in the original loop.
        match self.pending.take() {
            Some(episode) if episode.actions == actions => {
                self.controller.update(&episode, reward);
            }
            // an observation for an assignment this policy never sampled
            // (e.g. a replayed history) carries no action probabilities, so
            // no policy-gradient step is possible
            _ => {}
        }
    }

    fn best(&self) -> Option<Vec<usize>> {
        if !self.observed {
            return None;
        }
        Some(self.controller.best_episode().actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propose_matches_the_raw_controller_stream() {
        let space = AssignmentSpace::new(3, 5);
        let mut wrapped = Reinforce::for_space(space, 0x11);
        let mut raw = Controller::new(*wrapped.controller().config());
        for round in 0..4 {
            let via_trait = wrapped.propose();
            let direct = raw.sample_episode();
            assert_eq!(via_trait, direct.actions, "round {round}");
            let reward = 0.1 * round as f64;
            wrapped.observe(&via_trait, reward, true);
            raw.update(&direct, reward);
        }
        assert_eq!(wrapped.best(), Some(raw.best_episode().actions));
        assert_eq!(wrapped.controller().baseline(), raw.baseline());
    }

    #[test]
    fn foreign_observations_do_not_step_the_policy() {
        let space = AssignmentSpace::new(2, 3);
        let mut optimizer = Reinforce::for_space(space, 7);
        let proposed = optimizer.propose();
        let mut foreign = proposed.clone();
        foreign[0] = (foreign[0] + 1) % space.num_candidates;
        let baseline_before = optimizer.controller().baseline();
        optimizer.observe(&foreign, 1.0, true);
        assert_eq!(optimizer.controller().baseline(), baseline_before);
    }
}
