//! # rt3-search
//!
//! Pluggable Level-2 optimizers for RT3. The paper's Level-2 search assigns
//! one candidate pattern set per V/F level with an RL controller and argues
//! that choice against alternatives (Table III); this crate turns the
//! assignment problem into a subsystem boundary so those alternatives are
//! first-class:
//!
//! * the [`Optimizer`] trait — `propose` / `observe` / `best` over an
//!   [`AssignmentSpace`];
//! * the budget-matched [`SearchDriver`], which runs any optimizer for a
//!   fixed number of *distinct* evaluations through a memoized
//!   [`EvaluationCache`] (repeated proposals are free, so comparisons are
//!   fair);
//! * five implementations: [`Reinforce`] (the unchanged `rt3_rl`
//!   controller, still the default of `rt3-core::run_level2_search`),
//!   [`Evolutionary`] (seeded μ+λ with per-level mutation and uniform
//!   crossover), [`DecomposedBandit`] (per-level UCB1 / ε-greedy arms),
//!   [`RandomSearch`] (the equal-budget baseline) and [`Exhaustive`]
//!   (ground truth for small spaces).
//!
//! The crate knows nothing about models, masks or rewards — evaluation is a
//! closure the caller supplies (`rt3-core` plugs in its `SolutionPoint`
//! evaluation), which is what keeps the dependency arrow pointing from
//! `rt3-core` to here.
//!
//! # Examples
//!
//! ```
//! use rt3_search::{
//!     AssignmentSpace, DriverConfig, Evolutionary, Optimizer, SearchDriver,
//! };
//!
//! // maximise a toy separable objective over 3 levels × 4 candidates
//! let space = AssignmentSpace::new(3, 4);
//! let mut optimizer = Evolutionary::for_space(space, 42);
//! let driver = SearchDriver::new(DriverConfig::budget(40));
//! let outcome = driver.run(&mut optimizer, |actions| {
//!     actions.iter().map(|&a| a as f64).sum::<f64>()
//! });
//! assert!(outcome.unique_evaluations <= 40);
//! assert_eq!(outcome.best().map(|r| r.round()), Some(9.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandit;
mod cache;
mod driver;
mod evolutionary;
mod exhaustive;
mod optimizer;
mod random;
mod reinforce;

pub use bandit::{BanditConfig, BanditPolicy, DecomposedBandit};
pub use cache::EvaluationCache;
pub use driver::{DriverConfig, DriverOutcome, Fitness, SearchDriver};
pub use evolutionary::{Evolutionary, EvolutionaryConfig};
pub use exhaustive::Exhaustive;
pub use optimizer::{AssignmentSpace, BestTracker, Optimizer};
pub use random::RandomSearch;
pub use reinforce::Reinforce;

use serde::Serialize;

/// The optimizers this crate can build by name — the unit of the Table
/// III-style comparison and of the `RT3_OPTIMIZER` environment selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum OptimizerKind {
    /// REINFORCE policy gradient (the paper's choice).
    Reinforce,
    /// Elitist (μ+λ) evolution.
    Evolutionary,
    /// Per-level UCB1 bandit.
    Bandit,
    /// Uniform random baseline.
    Random,
    /// Lexicographic enumeration (ground truth for small spaces).
    Exhaustive,
}

impl OptimizerKind {
    /// Stable name, matching [`Optimizer::name`] of the built optimizer.
    pub fn name(self) -> &'static str {
        match self {
            Self::Reinforce => "reinforce",
            Self::Evolutionary => "evolutionary",
            Self::Bandit => "bandit",
            Self::Random => "random",
            Self::Exhaustive => "exhaustive",
        }
    }

    /// Parses a kind from a case-insensitive name (aliases: `rl`, `evo`,
    /// `ucb`).
    ///
    /// # Errors
    ///
    /// Returns the unknown name with the accepted spellings.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name.to_ascii_lowercase().as_str() {
            "reinforce" | "rl" => Ok(Self::Reinforce),
            "evolutionary" | "evo" => Ok(Self::Evolutionary),
            "bandit" | "ucb" => Ok(Self::Bandit),
            "random" => Ok(Self::Random),
            "exhaustive" => Ok(Self::Exhaustive),
            other => Err(format!(
                "unknown optimizer {other:?} (expected reinforce|evolutionary|bandit|random|exhaustive)"
            )),
        }
    }

    /// The learning optimizers that must beat [`RandomSearch`] at equal
    /// budget (the CI gate of `examples/search_comparison.rs`).
    pub fn tuned() -> [Self; 3] {
        [Self::Reinforce, Self::Evolutionary, Self::Bandit]
    }

    /// Every kind, in comparison-report order.
    pub fn all() -> [Self; 5] {
        [
            Self::Reinforce,
            Self::Evolutionary,
            Self::Bandit,
            Self::Random,
            Self::Exhaustive,
        ]
    }
}

impl std::fmt::Display for OptimizerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds a default-configured optimizer of `kind` over `space`. All kinds
/// are deterministic for a fixed `seed` ([`Exhaustive`] ignores it).
pub fn build_optimizer(
    kind: OptimizerKind,
    space: AssignmentSpace,
    seed: u64,
) -> Box<dyn Optimizer> {
    match kind {
        OptimizerKind::Reinforce => Box::new(Reinforce::for_space(space, seed)),
        OptimizerKind::Evolutionary => Box::new(Evolutionary::for_space(space, seed)),
        OptimizerKind::Bandit => Box::new(DecomposedBandit::for_space(space, seed)),
        OptimizerKind::Random => Box::new(RandomSearch::new(space, seed)),
        OptimizerKind::Exhaustive => Box::new(Exhaustive::new(space)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_parse_and_name() {
        for kind in OptimizerKind::all() {
            assert_eq!(OptimizerKind::parse(kind.name()), Ok(kind));
            assert_eq!(
                build_optimizer(kind, AssignmentSpace::new(2, 3), 7).name(),
                kind.name()
            );
        }
        assert_eq!(OptimizerKind::parse("RL"), Ok(OptimizerKind::Reinforce));
        assert_eq!(OptimizerKind::parse("evo"), Ok(OptimizerKind::Evolutionary));
        assert_eq!(OptimizerKind::parse("ucb"), Ok(OptimizerKind::Bandit));
        assert!(OptimizerKind::parse("annealing").is_err());
    }
}
