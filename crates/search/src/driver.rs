//! The budget-matched [`SearchDriver`]: runs any [`Optimizer`] for a fixed
//! number of distinct evaluations through a memoized
//! [`EvaluationCache`], so comparing two optimizers at the same
//! [`DriverConfig::budget`] compares them at equal evaluation cost.

use crate::cache::EvaluationCache;
use crate::optimizer::Optimizer;

/// What the driver needs to know about an evaluation result. `rt3-core`
/// implements this for its `SolutionPoint`; tests can use plain `f64`
/// rewards.
pub trait Fitness {
    /// The scalar reward the optimizer maximises.
    fn reward(&self) -> f64;

    /// Whether the assignment met the hard (timing) constraint.
    fn meets_constraint(&self) -> bool {
        true
    }
}

impl Fitness for f64 {
    fn reward(&self) -> f64 {
        *self
    }
}

/// Budget of one driver run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriverConfig {
    /// Maximum number of *distinct* assignments evaluated inside the search
    /// loop — cache hits are free. This is the cost axis comparisons are
    /// matched on: evaluating an assignment means pruning and scoring a
    /// model, proposing one is a few microseconds of optimizer arithmetic.
    pub budget: usize,
    /// Maximum number of proposals, so an optimizer that keeps re-proposing
    /// cached assignments (or has exhausted a tiny space) still terminates.
    pub max_proposals: usize,
}

impl DriverConfig {
    /// Budget-matched configuration: `budget` distinct evaluations, with a
    /// generous `8 × budget` proposal cap for optimizers that revisit
    /// assignments.
    pub fn budget(budget: usize) -> Self {
        Self {
            budget,
            max_proposals: budget.saturating_mul(8),
        }
    }

    /// Exactly `n` proposals (and at most `n` distinct evaluations) — the
    /// episode-count semantics of the original `run_level2_search` loop,
    /// where every proposal is one RL episode whether or not it repeats an
    /// assignment.
    pub fn exact_proposals(n: usize) -> Self {
        Self {
            budget: n,
            max_proposals: n,
        }
    }
}

/// Everything one driver run produced.
#[derive(Debug, Clone)]
pub struct DriverOutcome<T> {
    /// One evaluation per proposal, in proposal order, plus the final
    /// [`Optimizer::best`] read-out appended last (when the optimizer had
    /// one).
    pub history: Vec<T>,
    /// Index into `history` of the best point (feasible preferred, then
    /// highest reward, earliest on exact ties), `None` when the history is
    /// empty.
    pub best_index: Option<usize>,
    /// Number of proposals made inside the search loop.
    pub proposals: usize,
    /// Distinct assignments evaluated inside the search loop (≤ the
    /// configured budget).
    pub unique_evaluations: usize,
    /// Proposals answered from the cache (including the read-out lookup).
    pub cache_hits: usize,
    /// 1 when the final read-out had to evaluate an assignment the loop
    /// never visited, else 0. Reported separately so the in-loop budget
    /// stays exact.
    pub readout_evaluations: usize,
    /// Distinct evaluations spent when the eventual best point was *first*
    /// reached — the sample-efficiency number of the comparison report.
    pub evals_to_best: usize,
}

impl<T> DriverOutcome<T> {
    /// The best point, if any.
    pub fn best(&self) -> Option<&T> {
        self.best_index.map(|i| &self.history[i])
    }

    /// Distinct evaluations including the read-out.
    pub fn total_evaluations(&self) -> usize {
        self.unique_evaluations + self.readout_evaluations
    }

    /// Fraction of lookups answered from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.total_evaluations();
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

/// Runs optimizers against an evaluation function under a fixed budget.
#[derive(Debug, Clone, Copy)]
pub struct SearchDriver {
    config: DriverConfig,
}

impl SearchDriver {
    /// Creates a driver with the given budget configuration.
    pub fn new(config: DriverConfig) -> Self {
        Self { config }
    }

    /// The driver's budget configuration.
    pub fn config(&self) -> &DriverConfig {
        &self.config
    }

    /// Runs `optimizer` to its budget: repeatedly propose → evaluate
    /// (memoized) → observe, then evaluate the optimizer's final
    /// recommendation and append it to the history.
    ///
    /// # Panics
    ///
    /// Panics when the optimizer proposes an assignment outside its own
    /// [`Optimizer::space`].
    pub fn run<T, F>(&self, optimizer: &mut dyn Optimizer, mut evaluate: F) -> DriverOutcome<T>
    where
        T: Fitness + Clone,
        F: FnMut(&[usize]) -> T,
    {
        let space = optimizer.space();
        let mut cache: EvaluationCache<T> = EvaluationCache::new();
        let mut history: Vec<T> = Vec::new();
        let mut best_index: Option<usize> = None;
        let mut best_key: Option<(bool, f64)> = None;
        let mut evals_to_best = 0;
        let mut proposals = 0;
        while proposals < self.config.max_proposals && cache.misses() < self.config.budget {
            let actions = optimizer.propose();
            assert!(
                space.contains(&actions),
                "{} proposed {:?} outside its space {:?}",
                optimizer.name(),
                actions,
                space
            );
            let (point, _) = cache.get_or_insert_with(&actions, || evaluate(&actions));
            let point = point.clone();
            optimizer.observe(&actions, point.reward(), point.meets_constraint());
            let key = (point.meets_constraint(), point.reward());
            if best_key.is_none_or(|b| key > b) {
                best_key = Some(key);
                best_index = Some(history.len());
                evals_to_best = cache.misses();
            }
            history.push(point);
            proposals += 1;
        }
        let unique_evaluations = cache.misses();
        let mut readout_evaluations = 0;
        if let Some(actions) = optimizer.best() {
            assert!(
                space.contains(&actions),
                "{} recommended {:?} outside its space {:?}",
                optimizer.name(),
                actions,
                space
            );
            let (point, hit) = cache.get_or_insert_with(&actions, || evaluate(&actions));
            let point = point.clone();
            if !hit {
                readout_evaluations = 1;
            }
            let key = (point.meets_constraint(), point.reward());
            if best_key.is_none_or(|b| key > b) {
                best_index = Some(history.len());
                evals_to_best = unique_evaluations + readout_evaluations;
            }
            history.push(point);
        }
        DriverOutcome {
            history,
            best_index,
            proposals,
            unique_evaluations,
            cache_hits: cache.hits(),
            readout_evaluations,
            evals_to_best,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::AssignmentSpace;
    use crate::random::RandomSearch;

    fn reward_of(actions: &[usize]) -> f64 {
        actions.iter().map(|&a| a as f64).sum::<f64>()
    }

    #[test]
    fn driver_respects_the_evaluation_budget_and_appends_the_readout() {
        let space = AssignmentSpace::new(2, 3);
        let mut optimizer = RandomSearch::new(space, 9);
        let driver = SearchDriver::new(DriverConfig::budget(4));
        let mut evaluations = 0;
        let outcome = driver.run(&mut optimizer, |a| {
            evaluations += 1;
            reward_of(a)
        });
        assert!(outcome.unique_evaluations <= 4);
        assert_eq!(
            evaluations,
            outcome.unique_evaluations + outcome.readout_evaluations
        );
        // the read-out repeats the best observed assignment → cache hit
        assert_eq!(outcome.readout_evaluations, 0);
        assert_eq!(outcome.history.len(), outcome.proposals + 1);
        let best = outcome.best().expect("non-empty history");
        assert!((best.reward() - outcome.history[outcome.best_index.unwrap()]).abs() < 1e-12);
    }

    #[test]
    fn exact_proposals_reproduce_episode_semantics() {
        let space = AssignmentSpace::new(2, 2);
        let mut optimizer = RandomSearch::new(space, 1);
        let driver = SearchDriver::new(DriverConfig::exact_proposals(6));
        let outcome = driver.run(&mut optimizer, reward_of);
        // 6 proposals + the read-out, even though the 2×2 space only holds 4
        // distinct assignments (the repeats are cache hits)
        assert_eq!(outcome.proposals, 6);
        assert_eq!(outcome.history.len(), 7);
        assert!(outcome.unique_evaluations <= 4);
        assert!(outcome.cache_hits >= 2);
    }

    #[test]
    fn zero_budget_runs_nothing() {
        let space = AssignmentSpace::new(2, 2);
        let mut optimizer = RandomSearch::new(space, 3);
        let driver = SearchDriver::new(DriverConfig::budget(0));
        let outcome = driver.run(&mut optimizer, reward_of);
        assert!(outcome.history.is_empty());
        assert!(outcome.best_index.is_none());
        assert_eq!(outcome.total_evaluations(), 0);
    }

    #[test]
    fn evals_to_best_counts_distinct_evaluations_at_first_improvement() {
        let space = AssignmentSpace::new(1, 4);
        let mut optimizer = crate::exhaustive::Exhaustive::new(space);
        let driver = SearchDriver::new(DriverConfig::budget(4));
        // rising rewards: the best (action 3) is found on the 4th evaluation
        let outcome = driver.run(&mut optimizer, reward_of);
        assert_eq!(outcome.evals_to_best, 4);
        assert_eq!(outcome.unique_evaluations, 4);
    }
}
