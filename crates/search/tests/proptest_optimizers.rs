//! Property-based tests for the optimizer-subsystem invariants:
//!
//! 1. every optimizer only proposes valid assignments — length equals the
//!    number of levels, every action indexes into the candidate space —
//!    for arbitrary space shapes, seeds and reward streams;
//! 2. every optimizer is deterministic for a fixed seed: two instances fed
//!    the same rewards propose the same sequence and recommend the same
//!    assignment;
//! 3. the `SearchDriver` never exceeds its distinct-evaluation budget
//!    (cache hits excluded, plus at most one final read-out evaluation)
//!    and its memoized history matches direct re-evaluation.

use proptest::prelude::*;
use rt3_search::{
    build_optimizer, AssignmentSpace, DriverConfig, Optimizer, OptimizerKind, SearchDriver,
};

/// A deterministic toy objective: separable with a twist so rewards differ
/// per level, plus a feasibility cut.
fn toy_reward(actions: &[usize], num_candidates: usize) -> (f64, bool) {
    let reward: f64 = actions
        .iter()
        .enumerate()
        .map(|(level, &a)| (a as f64 + 1.0) / ((level + 1) * num_candidates) as f64)
        .sum();
    let feasible = actions.iter().sum::<usize>() % 4 != 1;
    (reward, feasible)
}

/// Drives one optimizer manually for `rounds` proposals and returns the
/// proposal sequence.
fn drive(optimizer: &mut dyn Optimizer, rounds: usize, num_candidates: usize) -> Vec<Vec<usize>> {
    let mut proposals = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let actions = optimizer.propose();
        let (reward, feasible) = toy_reward(&actions, num_candidates);
        optimizer.observe(&actions, reward, feasible);
        proposals.push(actions);
    }
    proposals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Invariant 1: proposals (and the final recommendation) always lie in
    /// the assignment space, for every optimizer kind.
    #[test]
    fn optimizers_only_propose_valid_assignments(
        num_levels in 1usize..5,
        num_candidates in 1usize..7,
        seed in 0u64..1_000_000,
    ) {
        let space = AssignmentSpace::new(num_levels, num_candidates);
        for kind in OptimizerKind::all() {
            let mut optimizer = build_optimizer(kind, space, seed);
            for round in 0..24 {
                let actions = optimizer.propose();
                prop_assert_eq!(actions.len(), num_levels, "{} round {}", kind, round);
                prop_assert!(
                    actions.iter().all(|&a| a < num_candidates),
                    "{} proposed {:?} with only {} candidates",
                    kind,
                    actions,
                    num_candidates
                );
                let (reward, feasible) = toy_reward(&actions, num_candidates);
                optimizer.observe(&actions, reward, feasible);
            }
            let best = optimizer.best().expect("observed 24 assignments");
            prop_assert!(space.contains(&best), "{} recommended {:?}", kind, best);
        }
    }

    /// Invariant 2: fixed seed → identical proposal stream and identical
    /// recommendation, for every optimizer kind.
    #[test]
    fn optimizers_are_deterministic_for_a_fixed_seed(
        num_levels in 1usize..4,
        num_candidates in 2usize..6,
        seed in 0u64..1_000_000,
    ) {
        let space = AssignmentSpace::new(num_levels, num_candidates);
        for kind in OptimizerKind::all() {
            let mut first = build_optimizer(kind, space, seed);
            let mut second = build_optimizer(kind, space, seed);
            let proposals_first = drive(first.as_mut(), 16, num_candidates);
            let proposals_second = drive(second.as_mut(), 16, num_candidates);
            prop_assert_eq!(&proposals_first, &proposals_second, "{} proposals", kind);
            prop_assert_eq!(first.best(), second.best(), "{} recommendation", kind);
        }
    }

    /// Invariant 3: the driver spends at most `budget` distinct in-loop
    /// evaluations plus at most one read-out evaluation, stops at the
    /// proposal cap, and its history rewards equal direct re-evaluation
    /// (the cache is transparent).
    #[test]
    fn driver_never_exceeds_its_evaluation_budget(
        num_levels in 1usize..4,
        num_candidates in 2usize..6,
        seed in 0u64..1_000_000,
        budget in 0usize..20,
    ) {
        let space = AssignmentSpace::new(num_levels, num_candidates);
        for kind in OptimizerKind::all() {
            let mut optimizer = build_optimizer(kind, space, seed);
            let driver = SearchDriver::new(DriverConfig::budget(budget));
            let mut evaluations = 0usize;
            let outcome = driver.run(optimizer.as_mut(), |actions| {
                evaluations += 1;
                toy_reward(actions, num_candidates).0
            });
            prop_assert!(
                outcome.unique_evaluations <= budget,
                "{}: {} in-loop evaluations for budget {}",
                kind,
                outcome.unique_evaluations,
                budget
            );
            prop_assert!(outcome.readout_evaluations <= 1, "{}", kind);
            prop_assert_eq!(
                evaluations,
                outcome.unique_evaluations + outcome.readout_evaluations,
                "{}: counted evaluations disagree",
                kind
            );
            prop_assert!(
                outcome.proposals <= driver.config().max_proposals,
                "{}: proposal cap",
                kind
            );
            // every lookup (proposals + the read-out, when one happened) is
            // either a cache hit or a distinct evaluation
            let readout_lookups = outcome.history.len() - outcome.proposals;
            prop_assert!(readout_lookups <= 1, "{}", kind);
            prop_assert_eq!(
                outcome.cache_hits + outcome.total_evaluations(),
                outcome.proposals + readout_lookups,
                "{}: lookup accounting disagrees",
                kind
            );
        }
    }
}
