//! Serve-run reporting: per-window traces plus aggregate latency, deadline
//! and energy statistics, and fleet-level aggregation ([`FleetReport`])
//! across several simulated devices.
//!
//! Latency percentiles come from one shared implementation — the
//! log-bucketed [`StreamingHistogram`] — instead of per-report sorted
//! sample vectors: memory stays bounded regardless of trace length, and a
//! fleet percentile is a bucket-wise merge of the device histograms rather
//! than a flatten-and-sort over every raw sample. Reported quantiles are
//! exact up to one bucket width (≈ 3% relative, see
//! [`StreamingHistogram::relative_error`]).

use rt3_telemetry::{StreamingHistogram, TelemetrySnapshot};

/// Per-window slice of a serve run (windows are one simulated second).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowReport {
    /// Window start, seconds into the trace.
    pub t_s: u32,
    /// Governor level position in effect (`None` once the device died).
    pub level_pos: Option<usize>,
    /// Battery state of charge at the window end.
    pub state_of_charge: f64,
    /// Requests that arrived in the window.
    pub arrivals: u64,
    /// Requests completed in the window.
    pub completed: u64,
    /// Completions that missed their deadline.
    pub missed: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Whether a pattern-set switch happened at the window boundary.
    pub switched: bool,
}

/// Aggregate outcome of one serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Scenario name.
    pub scenario: String,
    /// Policy label ("adaptive" or "fixed-l<index>").
    pub policy: String,
    /// Cost-model label ("analytic" or "calibrated") the run's predictions
    /// came from.
    pub cost_model: String,
    /// Per-window trace.
    pub windows: Vec<WindowReport>,
    /// Total arrivals over the trace.
    pub arrivals: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Completions that missed their deadline.
    pub missed_deadline: u64,
    /// Requests rejected at admission (queue full or certain miss).
    pub rejected: u64,
    /// Requests dropped because the battery died.
    pub dropped_dead_battery: u64,
    /// Requests still queued (admitted but unserved) when the trace ended.
    pub dropped_at_trace_end: u64,
    /// End-to-end latency distribution of all completions, milliseconds.
    pub latency_hist: StreamingHistogram,
    /// Pattern-set/V-F switches performed.
    pub switches: u64,
    /// Total wall time spent switching, milliseconds.
    pub switch_time_ms: f64,
    /// Inference energy drawn from the battery, joules.
    pub inference_energy_j: f64,
    /// Background (non-inference) energy drawn, joules.
    pub background_energy_j: f64,
    /// Completions per governor level position.
    pub runs_per_level: Vec<u64>,
    /// Battery state of charge at the end of the trace.
    pub final_state_of_charge: f64,
    /// Second at which the battery died, if it did.
    pub died_at_s: Option<u32>,
    /// Checksum accumulated by the real sparse-inference worker pool (0 when
    /// real inference is disabled).
    pub inference_checksum: f64,
    /// Real sparse-inference batches executed by the worker pool.
    pub real_batches: u64,
    /// Telemetry recorded during the run (`None` when telemetry is off).
    pub telemetry: Option<TelemetrySnapshot>,
}

impl ServeReport {
    /// Fraction of all arrivals that failed to complete by their deadline
    /// (deadline misses + rejections + dead-battery and trace-end drops).
    pub fn miss_rate(&self) -> f64 {
        if self.arrivals == 0 {
            return 0.0;
        }
        (self.missed_deadline
            + self.rejected
            + self.dropped_dead_battery
            + self.dropped_at_trace_end) as f64
            / self.arrivals as f64
    }

    /// Latency percentile over completions, `q` in `[0, 1]`: the streaming
    /// histogram's nearest-rank quantile, within one bucket width of the
    /// exact sample value. Returns 0 with no completions.
    pub fn latency_percentile_ms(&self, q: f64) -> f64 {
        self.latency_hist.quantile(q)
    }

    /// Median latency in milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.latency_percentile_ms(0.50)
    }

    /// 95th-percentile latency in milliseconds.
    pub fn p95_ms(&self) -> f64 {
        self.latency_percentile_ms(0.95)
    }

    /// 99th-percentile latency in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.latency_percentile_ms(0.99)
    }

    /// Total energy drawn from the battery, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.inference_energy_j + self.background_energy_j
    }

    /// Completions per joule of inference energy (the online analogue of the
    /// paper's "number of runs" metric).
    pub fn runs_per_joule(&self) -> f64 {
        if self.inference_energy_j <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / self.inference_energy_j
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<22} {:<10} served {:>5}/{:<5} miss {:>5.1}% p50 {:>6.1} ms p95 {:>6.1} ms \
             switches {:>3} energy {:>7.1} J final soc {:>4.0}%{}",
            self.scenario,
            self.policy,
            self.completed,
            self.arrivals,
            100.0 * self.miss_rate(),
            self.p50_ms(),
            self.p95_ms(),
            self.switches,
            self.total_energy_j(),
            100.0 * self.final_state_of_charge,
            match self.died_at_s {
                Some(t) => format!(" DIED at {t} s"),
                None => String::new(),
            }
        )
    }
}

/// Aggregate outcome of one fleet run: per-device [`ServeReport`]s plus the
/// router's view of the trace.
///
/// Per-device `rejected` counts include failed failover *attempts* (a
/// request bounced off one device and admitted by another is rejected on
/// the first and completed on the second), so the fleet miss rate is
/// computed from terminal outcomes — completions that missed, drops and
/// unroutable requests — never by summing per-device rates.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Fleet scenario name.
    pub scenario: String,
    /// Routing policy label ("battery-aware", "round-robin" or "sticky").
    pub routing: String,
    /// Requests that arrived at the router over the trace.
    pub arrivals: u64,
    /// Requests no device would admit (all dead or all rejecting).
    pub unroutable: u64,
    /// Per-device outcomes; `ServeReport::arrivals` is the traffic
    /// *admitted by* that device (failed failover attempts count only in
    /// its `rejected`), and `ServeReport::scenario` carries the device name
    /// from the fleet scenario's profile.
    pub devices: Vec<ServeReport>,
    /// Router-level telemetry — per-device route and failover counters
    /// (`None` when telemetry is off). Device-level telemetry rides inside
    /// each [`ServeReport`].
    pub telemetry: Option<TelemetrySnapshot>,
}

impl FleetReport {
    /// Requests served to completion across the fleet.
    pub fn completed(&self) -> u64 {
        self.devices.iter().map(|d| d.completed).sum()
    }

    /// Completions that missed their deadline, across the fleet.
    pub fn missed_deadline(&self) -> u64 {
        self.devices.iter().map(|d| d.missed_deadline).sum()
    }

    /// Requests lost after admission: queued on a device whose battery died,
    /// or still queued when the trace ended.
    pub fn dropped(&self) -> u64 {
        self.devices
            .iter()
            .map(|d| d.dropped_dead_battery + d.dropped_at_trace_end)
            .sum()
    }

    /// Fraction of all router arrivals that failed: deadline misses, drops
    /// on admitted requests, and unroutable requests.
    pub fn miss_rate(&self) -> f64 {
        if self.arrivals == 0 {
            return 0.0;
        }
        (self.missed_deadline() + self.dropped() + self.unroutable) as f64 / self.arrivals as f64
    }

    /// Total energy drawn from every battery, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.devices.iter().map(|d| d.total_energy_j()).sum()
    }

    /// Pattern-set/V-F switches across the fleet.
    pub fn total_switches(&self) -> u64 {
        self.devices.iter().map(|d| d.switches).sum()
    }

    /// Devices whose battery died during the trace.
    pub fn deaths(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| d.died_at_s.is_some())
            .count()
    }

    /// Load imbalance: the busiest device's routed traffic over the fleet
    /// mean (1.0 = perfectly balanced; `round-robin` sits near 1, `sticky`
    /// near the device count). Returns 0 with no routed traffic.
    pub fn load_imbalance(&self) -> f64 {
        let routed: Vec<u64> = self.devices.iter().map(|d| d.arrivals).collect();
        let total: u64 = routed.iter().sum();
        if total == 0 || routed.is_empty() {
            return 0.0;
        }
        let mean = total as f64 / routed.len() as f64;
        *routed.iter().max().expect("non-empty") as f64 / mean
    }

    /// Latency percentile over all fleet completions, `q` in `[0, 1]`:
    /// the device histograms merge bucket-wise (merging is associative, so
    /// the result is independent of device order) and the quantile is read
    /// off the aggregate — no raw samples needed.
    pub fn latency_percentile_ms(&self, q: f64) -> f64 {
        let mut all = StreamingHistogram::new();
        for device in &self.devices {
            all.merge(&device.latency_hist);
        }
        all.quantile(q)
    }

    /// Fleet-wide aggregate telemetry: every device's
    /// [`TelemetrySnapshot`] merged into one ([`TelemetrySnapshot::merge`]
    /// — counters add, histograms bucket-merge, traces concatenate), so a
    /// fleet run exports a single `latency_ms` histogram or
    /// `requests_completed` counter without touching raw samples. Returns
    /// `None` when the fleet is empty or any device ran without telemetry
    /// (a partial aggregate would silently under-count). Router counters
    /// ([`FleetReport::telemetry`]) are kept separate — merge them in with
    /// another [`TelemetrySnapshot::merge`] call if one stream is wanted.
    pub fn merged_device_telemetry(&self) -> Option<TelemetrySnapshot> {
        let mut merged: Option<TelemetrySnapshot> = None;
        for device in &self.devices {
            let snapshot = device.telemetry.as_ref()?;
            match &mut merged {
                Some(m) => m.merge(snapshot),
                None => merged = Some(snapshot.clone()),
            }
        }
        merged
    }

    /// One-line fleet summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<22} {:<14} served {:>6}/{:<6} miss {:>5.1}% p95 {:>7.1} ms switches {:>3} \
             energy {:>7.1} J imbalance {:>4.2} deaths {}",
            self.scenario,
            self.routing,
            self.completed(),
            self.arrivals,
            100.0 * self.miss_rate(),
            self.latency_percentile_ms(0.95),
            self.total_switches(),
            self.total_energy_j(),
            self.load_imbalance(),
            self.deaths(),
        )
    }

    /// Per-device summary lines (device name, routed share, outcome). The
    /// per-device miss rate counts terminal outcomes only (deadline misses
    /// and drops over admitted traffic) — `ServeReport::miss_rate` would
    /// also count failover attempts that were served elsewhere.
    pub fn device_summaries(&self) -> Vec<String> {
        self.devices
            .iter()
            .map(|d| {
                let failed = d.missed_deadline + d.dropped_dead_battery + d.dropped_at_trace_end;
                let miss = if d.arrivals == 0 {
                    0.0
                } else {
                    failed as f64 / d.arrivals as f64
                };
                format!(
                    "  {:<14} routed {:>6} served {:>6} miss {:>5.1}% switches {:>3} \
                     final soc {:>4.0}%{}",
                    d.scenario,
                    d.arrivals,
                    d.completed,
                    100.0 * miss,
                    d.switches,
                    100.0 * d.final_state_of_charge,
                    match d.died_at_s {
                        Some(t) => format!(" DIED at {t} s"),
                        None => String::new(),
                    }
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(latencies: Vec<f64>) -> ServeReport {
        let mut latency_hist = StreamingHistogram::new();
        for &l in &latencies {
            latency_hist.record(l);
        }
        ServeReport {
            scenario: "test".into(),
            policy: "adaptive".into(),
            cost_model: "analytic".into(),
            windows: Vec::new(),
            arrivals: 10,
            completed: latencies.len() as u64,
            missed_deadline: 1,
            rejected: 1,
            dropped_dead_battery: 0,
            dropped_at_trace_end: 0,
            latency_hist,
            switches: 2,
            switch_time_ms: 10.0,
            inference_energy_j: 5.0,
            background_energy_j: 2.5,
            runs_per_level: vec![0, 0, 8],
            final_state_of_charge: 0.4,
            died_at_s: None,
            inference_checksum: 0.0,
            real_batches: 0,
            telemetry: None,
        }
    }

    /// Asserts a reported percentile lands in the bucket of the exact
    /// nearest-rank sample — the documented ±1-bucket pin of the shared
    /// histogram percentiles.
    fn assert_within_bucket(reported: f64, exact: f64) {
        let (lo, hi) = StreamingHistogram::bucket_bounds(exact);
        assert!(
            (lo.min(exact)..=hi).contains(&reported),
            "{reported} outside the bucket [{lo}, {hi}] of exact {exact}"
        );
    }

    #[test]
    fn miss_rate_counts_rejections_and_misses() {
        let r = report(vec![50.0; 8]);
        assert!((r.miss_rate() - 0.2).abs() < 1e-12);
        assert!((r.total_energy_j() - 7.5).abs() < 1e-12);
        assert!(r.runs_per_joule() > 0.0);
    }

    #[test]
    fn percentiles_track_nearest_rank_within_one_bucket() {
        let r = report((1..=100).map(|x| x as f64).collect());
        assert_within_bucket(r.p50_ms(), 50.0);
        assert_within_bucket(r.p95_ms(), 95.0);
        assert_within_bucket(r.p99_ms(), 99.0);
        assert_eq!(r.latency_percentile_ms(1.0), 100.0, "max is exact");
        assert_eq!(report(Vec::new()).p95_ms(), 0.0);
    }

    #[test]
    fn fleet_aggregates_sum_devices_and_count_unroutable() {
        let mut d0 = report(vec![40.0; 8]); // arrivals 10, missed 1, rejected 1
        d0.scenario = "d0".into();
        let mut d1 = report(vec![80.0; 8]);
        d1.scenario = "d1".into();
        d1.arrivals = 30; // skewed routing
        d1.dropped_dead_battery = 2;
        d1.died_at_s = Some(9);
        let fleet = FleetReport {
            scenario: "fleet-test".into(),
            routing: "battery-aware".into(),
            arrivals: 42,
            unroutable: 2,
            devices: vec![d0, d1],
            telemetry: None,
        };
        assert_eq!(fleet.completed(), 16);
        assert_eq!(fleet.missed_deadline(), 2);
        assert_eq!(fleet.dropped(), 2);
        // (2 missed + 2 dropped + 2 unroutable) / 42 — device `rejected`
        // counters are failover attempts and must NOT be double counted
        assert!((fleet.miss_rate() - 6.0 / 42.0).abs() < 1e-12);
        assert_eq!(fleet.total_switches(), 4);
        assert!((fleet.total_energy_j() - 15.0).abs() < 1e-12);
        assert_eq!(fleet.deaths(), 1);
        // routed 10 vs 30: max 30 over mean 20
        assert!((fleet.load_imbalance() - 1.5).abs() < 1e-12);
        // the merged histogram's median sits in 40's bucket, the top
        // percentile is clamped to the observed maximum exactly
        assert_within_bucket(fleet.latency_percentile_ms(0.5), 40.0);
        assert_eq!(fleet.latency_percentile_ms(1.0), 80.0);
        assert!(fleet.summary().contains("battery-aware"));
        assert_eq!(fleet.device_summaries().len(), 2);
    }

    #[test]
    fn empty_fleet_rates_are_zero() {
        let fleet = FleetReport {
            scenario: "empty".into(),
            routing: "round-robin".into(),
            arrivals: 0,
            unroutable: 0,
            devices: Vec::new(),
            telemetry: None,
        };
        assert_eq!(fleet.miss_rate(), 0.0);
        assert_eq!(fleet.load_imbalance(), 0.0);
        assert_eq!(fleet.latency_percentile_ms(0.95), 0.0);
    }
}
