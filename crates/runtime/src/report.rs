//! Serve-run reporting: per-window traces plus aggregate latency, deadline
//! and energy statistics.

/// Per-window slice of a serve run (windows are one simulated second).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowReport {
    /// Window start, seconds into the trace.
    pub t_s: u32,
    /// Governor level position in effect (`None` once the device died).
    pub level_pos: Option<usize>,
    /// Battery state of charge at the window end.
    pub state_of_charge: f64,
    /// Requests that arrived in the window.
    pub arrivals: u64,
    /// Requests completed in the window.
    pub completed: u64,
    /// Completions that missed their deadline.
    pub missed: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Whether a pattern-set switch happened at the window boundary.
    pub switched: bool,
}

/// Aggregate outcome of one serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Scenario name.
    pub scenario: String,
    /// Policy label ("adaptive" or "fixed-l<index>").
    pub policy: String,
    /// Per-window trace.
    pub windows: Vec<WindowReport>,
    /// Total arrivals over the trace.
    pub arrivals: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Completions that missed their deadline.
    pub missed_deadline: u64,
    /// Requests rejected at admission (queue full or certain miss).
    pub rejected: u64,
    /// Requests dropped because the battery died.
    pub dropped_dead_battery: u64,
    /// Requests still queued (admitted but unserved) when the trace ended.
    pub dropped_at_trace_end: u64,
    /// Sorted end-to-end latencies of all completions, milliseconds.
    pub latencies_ms: Vec<f64>,
    /// Pattern-set/V-F switches performed.
    pub switches: u64,
    /// Total wall time spent switching, milliseconds.
    pub switch_time_ms: f64,
    /// Inference energy drawn from the battery, joules.
    pub inference_energy_j: f64,
    /// Background (non-inference) energy drawn, joules.
    pub background_energy_j: f64,
    /// Completions per governor level position.
    pub runs_per_level: Vec<u64>,
    /// Battery state of charge at the end of the trace.
    pub final_state_of_charge: f64,
    /// Second at which the battery died, if it did.
    pub died_at_s: Option<u32>,
    /// Checksum accumulated by the real sparse-inference worker pool (0 when
    /// real inference is disabled).
    pub inference_checksum: f64,
    /// Real sparse-inference batches executed by the worker pool.
    pub real_batches: u64,
}

impl ServeReport {
    /// Fraction of all arrivals that failed to complete by their deadline
    /// (deadline misses + rejections + dead-battery and trace-end drops).
    pub fn miss_rate(&self) -> f64 {
        if self.arrivals == 0 {
            return 0.0;
        }
        (self.missed_deadline
            + self.rejected
            + self.dropped_dead_battery
            + self.dropped_at_trace_end) as f64
            / self.arrivals as f64
    }

    /// Latency percentile over completions, `q` in `[0, 1]`. Returns 0 with
    /// no completions.
    pub fn latency_percentile_ms(&self, q: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // nearest-rank: the smallest latency with at least q of the mass at
        // or below it
        let rank = (q * self.latencies_ms.len() as f64).ceil() as usize;
        self.latencies_ms[rank.max(1) - 1]
    }

    /// Median latency in milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.latency_percentile_ms(0.50)
    }

    /// 95th-percentile latency in milliseconds.
    pub fn p95_ms(&self) -> f64 {
        self.latency_percentile_ms(0.95)
    }

    /// 99th-percentile latency in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.latency_percentile_ms(0.99)
    }

    /// Total energy drawn from the battery, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.inference_energy_j + self.background_energy_j
    }

    /// Completions per joule of inference energy (the online analogue of the
    /// paper's "number of runs" metric).
    pub fn runs_per_joule(&self) -> f64 {
        if self.inference_energy_j <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / self.inference_energy_j
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<22} {:<10} served {:>5}/{:<5} miss {:>5.1}% p50 {:>6.1} ms p95 {:>6.1} ms \
             switches {:>3} energy {:>7.1} J final soc {:>4.0}%{}",
            self.scenario,
            self.policy,
            self.completed,
            self.arrivals,
            100.0 * self.miss_rate(),
            self.p50_ms(),
            self.p95_ms(),
            self.switches,
            self.total_energy_j(),
            100.0 * self.final_state_of_charge,
            match self.died_at_s {
                Some(t) => format!(" DIED at {t} s"),
                None => String::new(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(latencies: Vec<f64>) -> ServeReport {
        ServeReport {
            scenario: "test".into(),
            policy: "adaptive".into(),
            windows: Vec::new(),
            arrivals: 10,
            completed: latencies.len() as u64,
            missed_deadline: 1,
            rejected: 1,
            dropped_dead_battery: 0,
            dropped_at_trace_end: 0,
            latencies_ms: latencies,
            switches: 2,
            switch_time_ms: 10.0,
            inference_energy_j: 5.0,
            background_energy_j: 2.5,
            runs_per_level: vec![0, 0, 8],
            final_state_of_charge: 0.4,
            died_at_s: None,
            inference_checksum: 0.0,
            real_batches: 0,
        }
    }

    #[test]
    fn miss_rate_counts_rejections_and_misses() {
        let r = report(vec![50.0; 8]);
        assert!((r.miss_rate() - 0.2).abs() < 1e-12);
        assert!((r.total_energy_j() - 7.5).abs() < 1e-12);
        assert!(r.runs_per_joule() > 0.0);
    }

    #[test]
    fn percentiles_pick_from_sorted_latencies() {
        let r = report((1..=100).map(|x| x as f64).collect());
        assert_eq!(r.p50_ms(), 50.0);
        assert_eq!(r.p95_ms(), 95.0);
        assert_eq!(r.p99_ms(), 99.0);
        assert_eq!(report(Vec::new()).p95_ms(), 0.0);
    }
}
