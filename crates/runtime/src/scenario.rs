//! Trace-driven serving scenarios: each variant describes a full run —
//! request traffic, background power draw, charging, battery events and
//! thermal caps — so a new workload is one enum value away.
//!
//! Traffic is generated deterministically from the engine seed: each window
//! draws `rate × window` arrivals (with the fractional part resolved by a
//! Bernoulli draw) at uniform offsets, which approximates a Poisson process
//! closely enough for scheduler studies while staying replayable.

use rand::rngs::StdRng;
use rand::Rng;

/// A serving scenario to play against the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Scenario {
    /// Steady request rate and steady background drain — the paper's
    /// Table II setting as an online trace.
    ConstantDrain {
        /// Trace length in seconds.
        duration_s: u32,
        /// Request arrivals per second.
        rps: f64,
        /// Non-inference device power draw in watts.
        background_w: f64,
    },
    /// A base rate with periodic traffic bursts (the acceptance scenario).
    BurstyTraffic {
        /// Trace length in seconds.
        duration_s: u32,
        /// Baseline arrivals per second.
        base_rps: f64,
        /// Arrivals per second while a burst is active.
        burst_rps: f64,
        /// Seconds between burst starts.
        period_s: u32,
        /// Length of each burst in seconds.
        burst_len_s: u32,
        /// Non-inference device power draw in watts.
        background_w: f64,
    },
    /// Steady traffic with a sudden loss of battery charge mid-trace
    /// (voltage-sag cliff as the pack ages or the weather turns cold).
    CliffDischarge {
        /// Trace length in seconds.
        duration_s: u32,
        /// Request arrivals per second.
        rps: f64,
        /// Non-inference device power draw in watts.
        background_w: f64,
        /// Second at which the cliff hits.
        cliff_at_s: u32,
        /// Fraction of *capacity* lost instantly, in `[0, 1]`.
        cliff_drop: f64,
    },
    /// The device is plugged in partway through and charges while serving.
    ChargeWhileServing {
        /// Trace length in seconds.
        duration_s: u32,
        /// Request arrivals per second.
        rps: f64,
        /// Non-inference device power draw in watts.
        background_w: f64,
        /// Second at which the charger is plugged in.
        charge_from_s: u32,
        /// Charging power in watts (net of background once plugged).
        charge_w: f64,
    },
    /// A thermal governor caps the maximum V/F level for part of the trace.
    ThermalCap {
        /// Trace length in seconds.
        duration_s: u32,
        /// Request arrivals per second.
        rps: f64,
        /// Non-inference device power draw in watts.
        background_w: f64,
        /// Second at which the cap engages.
        cap_from_s: u32,
        /// Second at which the cap releases.
        cap_until_s: u32,
        /// Maximum allowed level position while capped (0 = lowest).
        cap_level_pos: usize,
    },
}

impl Scenario {
    /// The acceptance-criteria bursty trace: 90 simulated seconds, 30 req/s
    /// baseline with 60 req/s bursts for 6 s out of every 20 s, 0.08 W
    /// background draw (inference, not idle power, dominates the battery).
    pub fn default_bursty() -> Self {
        Scenario::BurstyTraffic {
            duration_s: 90,
            base_rps: 30.0,
            burst_rps: 60.0,
            period_s: 20,
            burst_len_s: 6,
            background_w: 0.08,
        }
    }

    /// Short human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::ConstantDrain { .. } => "constant-drain",
            Scenario::BurstyTraffic { .. } => "bursty-traffic",
            Scenario::CliffDischarge { .. } => "cliff-discharge",
            Scenario::ChargeWhileServing { .. } => "charge-while-serving",
            Scenario::ThermalCap { .. } => "thermal-cap",
        }
    }

    /// Trace length in seconds.
    pub fn duration_s(&self) -> u32 {
        match *self {
            Scenario::ConstantDrain { duration_s, .. }
            | Scenario::BurstyTraffic { duration_s, .. }
            | Scenario::CliffDischarge { duration_s, .. }
            | Scenario::ChargeWhileServing { duration_s, .. }
            | Scenario::ThermalCap { duration_s, .. } => duration_s,
        }
    }

    /// Request rate in effect at `t_s` seconds into the trace.
    pub fn rate_at(&self, t_s: u32) -> f64 {
        match *self {
            Scenario::ConstantDrain { rps, .. }
            | Scenario::CliffDischarge { rps, .. }
            | Scenario::ChargeWhileServing { rps, .. }
            | Scenario::ThermalCap { rps, .. } => rps,
            Scenario::BurstyTraffic {
                base_rps,
                burst_rps,
                period_s,
                burst_len_s,
                ..
            } => {
                if period_s > 0 && t_s % period_s < burst_len_s {
                    burst_rps
                } else {
                    base_rps
                }
            }
        }
    }

    /// Non-inference device power draw at `t_s`, in watts.
    pub fn background_w(&self, _t_s: u32) -> f64 {
        match *self {
            Scenario::ConstantDrain { background_w, .. }
            | Scenario::BurstyTraffic { background_w, .. }
            | Scenario::CliffDischarge { background_w, .. }
            | Scenario::ChargeWhileServing { background_w, .. }
            | Scenario::ThermalCap { background_w, .. } => background_w,
        }
    }

    /// Charging power flowing *into* the battery at `t_s`, in watts.
    pub fn charge_w(&self, t_s: u32) -> f64 {
        match *self {
            Scenario::ChargeWhileServing {
                charge_from_s,
                charge_w,
                ..
            } if t_s >= charge_from_s => charge_w,
            _ => 0.0,
        }
    }

    /// Instantaneous battery loss (fraction of capacity) occurring during
    /// second `t_s`, if any.
    pub fn battery_cliff(&self, t_s: u32) -> Option<f64> {
        match *self {
            Scenario::CliffDischarge {
                cliff_at_s,
                cliff_drop,
                ..
            } if t_s == cliff_at_s => Some(cliff_drop),
            _ => None,
        }
    }

    /// Thermal cap on the level position in effect at `t_s`, if any.
    pub fn thermal_cap(&self, t_s: u32) -> Option<usize> {
        match *self {
            Scenario::ThermalCap {
                cap_from_s,
                cap_until_s,
                cap_level_pos,
                ..
            } if (cap_from_s..cap_until_s).contains(&t_s) => Some(cap_level_pos),
            _ => None,
        }
    }

    /// Arrival offsets (milliseconds into the window) for the one-second
    /// window starting at `t_s`, sorted ascending.
    pub fn arrivals_in_second(&self, t_s: u32, rng: &mut StdRng) -> Vec<f64> {
        let rate = self.rate_at(t_s);
        if rate <= 0.0 {
            return Vec::new();
        }
        let whole = rate.floor() as usize;
        let fractional = rate - rate.floor();
        let count = whole + usize::from(rng.gen_bool(fractional));
        let mut offsets: Vec<f64> = (0..count).map(|_| rng.gen_range(0.0..1_000.0)).collect();
        offsets.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn bursty_rate_alternates() {
        let s = Scenario::default_bursty();
        assert_eq!(s.rate_at(0), 60.0, "burst at window start");
        assert_eq!(s.rate_at(6), 30.0);
        assert_eq!(s.rate_at(20), 60.0);
        assert!(
            s.duration_s() >= 60,
            "acceptance trace is at least a minute"
        );
    }

    #[test]
    fn arrivals_match_rate_on_average_and_are_sorted() {
        let s = Scenario::ConstantDrain {
            duration_s: 60,
            rps: 5.5,
            background_w: 0.2,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut total = 0usize;
        for t in 0..400 {
            let a = s.arrivals_in_second(t, &mut rng);
            assert!(a.windows(2).all(|w| w[0] <= w[1]));
            assert!(a.iter().all(|&x| (0.0..1_000.0).contains(&x)));
            total += a.len();
        }
        let mean = total as f64 / 400.0;
        assert!(
            (mean - 5.5).abs() < 0.4,
            "mean arrivals {mean} should track 5.5"
        );
    }

    #[test]
    fn cliff_charge_and_cap_fire_at_the_right_times() {
        let cliff = Scenario::CliffDischarge {
            duration_s: 60,
            rps: 2.0,
            background_w: 0.2,
            cliff_at_s: 30,
            cliff_drop: 0.25,
        };
        assert_eq!(cliff.battery_cliff(29), None);
        assert_eq!(cliff.battery_cliff(30), Some(0.25));
        let charge = Scenario::ChargeWhileServing {
            duration_s: 60,
            rps: 2.0,
            background_w: 0.2,
            charge_from_s: 20,
            charge_w: 2.0,
        };
        assert_eq!(charge.charge_w(19), 0.0);
        assert_eq!(charge.charge_w(20), 2.0);
        let cap = Scenario::ThermalCap {
            duration_s: 60,
            rps: 2.0,
            background_w: 0.2,
            cap_from_s: 10,
            cap_until_s: 40,
            cap_level_pos: 0,
        };
        assert_eq!(cap.thermal_cap(9), None);
        assert_eq!(cap.thermal_cap(10), Some(0));
        assert_eq!(cap.thermal_cap(40), None);
    }
}
