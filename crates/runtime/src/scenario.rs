//! Trace-driven serving scenarios: each variant describes a full run —
//! request traffic, background power draw, charging, battery events and
//! thermal caps — so a new workload is one enum value away.
//!
//! Fleet traces ([`FleetScenario`]) layer per-device events on top: one
//! fleet-wide arrival curve feeds the router, while each
//! [`DeviceProfile`] carries that device's battery size, initial charge,
//! charger, thermal-cap window and cliff.
//!
//! Traffic is generated deterministically from the engine seed: each window
//! draws `rate × window` arrivals (with the fractional part resolved by a
//! Bernoulli draw) at uniform offsets, which approximates a Poisson process
//! closely enough for scheduler studies while staying replayable.

use rand::rngs::StdRng;
use rand::Rng;

/// A serving scenario to play against the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Scenario {
    /// Steady request rate and steady background drain — the paper's
    /// Table II setting as an online trace.
    ConstantDrain {
        /// Trace length in seconds.
        duration_s: u32,
        /// Request arrivals per second.
        rps: f64,
        /// Non-inference device power draw in watts.
        background_w: f64,
    },
    /// A base rate with periodic traffic bursts (the acceptance scenario).
    BurstyTraffic {
        /// Trace length in seconds.
        duration_s: u32,
        /// Baseline arrivals per second.
        base_rps: f64,
        /// Arrivals per second while a burst is active.
        burst_rps: f64,
        /// Seconds between burst starts.
        period_s: u32,
        /// Length of each burst in seconds.
        burst_len_s: u32,
        /// Non-inference device power draw in watts.
        background_w: f64,
    },
    /// Steady traffic with a sudden loss of battery charge mid-trace
    /// (voltage-sag cliff as the pack ages or the weather turns cold).
    CliffDischarge {
        /// Trace length in seconds.
        duration_s: u32,
        /// Request arrivals per second.
        rps: f64,
        /// Non-inference device power draw in watts.
        background_w: f64,
        /// Second at which the cliff hits.
        cliff_at_s: u32,
        /// Fraction of *capacity* lost instantly, in `[0, 1]`.
        cliff_drop: f64,
    },
    /// The device is plugged in partway through and charges while serving.
    ChargeWhileServing {
        /// Trace length in seconds.
        duration_s: u32,
        /// Request arrivals per second.
        rps: f64,
        /// Non-inference device power draw in watts.
        background_w: f64,
        /// Second at which the charger is plugged in.
        charge_from_s: u32,
        /// Charging power in watts (net of background once plugged).
        charge_w: f64,
    },
    /// A thermal governor caps the maximum V/F level for part of the trace.
    ThermalCap {
        /// Trace length in seconds.
        duration_s: u32,
        /// Request arrivals per second.
        rps: f64,
        /// Non-inference device power draw in watts.
        background_w: f64,
        /// Second at which the cap engages.
        cap_from_s: u32,
        /// Second at which the cap releases.
        cap_until_s: u32,
        /// Maximum allowed level position while capped (0 = lowest).
        cap_level_pos: usize,
    },
    /// A diurnal arrival curve: the rate swings sinusoidally from a
    /// night-time trough (at `t = 0`) to a midday peak (at `period_s / 2`)
    /// and back, one full cycle per `period_s`. With `period_s = 86_400`
    /// this is a 24 h day; tests compress the same shape into shorter
    /// periods.
    Diurnal {
        /// Trace length in seconds.
        duration_s: u32,
        /// Arrivals per second at the trough of the curve.
        trough_rps: f64,
        /// Arrivals per second at the peak of the curve.
        peak_rps: f64,
        /// Seconds per full day cycle (86 400 for real time).
        period_s: u32,
        /// Non-inference device power draw in watts.
        background_w: f64,
    },
}

impl Scenario {
    /// The acceptance-criteria bursty trace: 90 simulated seconds, 30 req/s
    /// baseline with 60 req/s bursts for 6 s out of every 20 s, 0.08 W
    /// background draw (inference, not idle power, dominates the battery).
    pub fn default_bursty() -> Self {
        Scenario::BurstyTraffic {
            duration_s: 90,
            base_rps: 30.0,
            burst_rps: 60.0,
            period_s: 20,
            burst_len_s: 6,
            background_w: 0.08,
        }
    }

    /// Short human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::ConstantDrain { .. } => "constant-drain",
            Scenario::BurstyTraffic { .. } => "bursty-traffic",
            Scenario::CliffDischarge { .. } => "cliff-discharge",
            Scenario::ChargeWhileServing { .. } => "charge-while-serving",
            Scenario::ThermalCap { .. } => "thermal-cap",
            Scenario::Diurnal { .. } => "diurnal",
        }
    }

    /// Trace length in seconds.
    pub fn duration_s(&self) -> u32 {
        match *self {
            Scenario::ConstantDrain { duration_s, .. }
            | Scenario::BurstyTraffic { duration_s, .. }
            | Scenario::CliffDischarge { duration_s, .. }
            | Scenario::ChargeWhileServing { duration_s, .. }
            | Scenario::ThermalCap { duration_s, .. }
            | Scenario::Diurnal { duration_s, .. } => duration_s,
        }
    }

    /// Request rate in effect at `t_s` seconds into the trace.
    pub fn rate_at(&self, t_s: u32) -> f64 {
        match *self {
            Scenario::ConstantDrain { rps, .. }
            | Scenario::CliffDischarge { rps, .. }
            | Scenario::ChargeWhileServing { rps, .. }
            | Scenario::ThermalCap { rps, .. } => rps,
            Scenario::BurstyTraffic {
                base_rps,
                burst_rps,
                period_s,
                burst_len_s,
                ..
            } => {
                if period_s > 0 && t_s % period_s < burst_len_s {
                    burst_rps
                } else {
                    base_rps
                }
            }
            Scenario::Diurnal {
                trough_rps,
                peak_rps,
                period_s,
                ..
            } => {
                if period_s == 0 {
                    return trough_rps;
                }
                let phase = (t_s % period_s) as f64 / period_s as f64;
                let swing = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * phase).cos());
                trough_rps + (peak_rps - trough_rps) * swing
            }
        }
    }

    /// Non-inference device power draw at `t_s`, in watts.
    pub fn background_w(&self, _t_s: u32) -> f64 {
        match *self {
            Scenario::ConstantDrain { background_w, .. }
            | Scenario::BurstyTraffic { background_w, .. }
            | Scenario::CliffDischarge { background_w, .. }
            | Scenario::ChargeWhileServing { background_w, .. }
            | Scenario::ThermalCap { background_w, .. }
            | Scenario::Diurnal { background_w, .. } => background_w,
        }
    }

    /// Charging power flowing *into* the battery at `t_s`, in watts.
    pub fn charge_w(&self, t_s: u32) -> f64 {
        match *self {
            Scenario::ChargeWhileServing {
                charge_from_s,
                charge_w,
                ..
            } if t_s >= charge_from_s => charge_w,
            _ => 0.0,
        }
    }

    /// Instantaneous battery loss (fraction of capacity) occurring during
    /// second `t_s`, if any.
    pub fn battery_cliff(&self, t_s: u32) -> Option<f64> {
        match *self {
            Scenario::CliffDischarge {
                cliff_at_s,
                cliff_drop,
                ..
            } if t_s == cliff_at_s => Some(cliff_drop),
            _ => None,
        }
    }

    /// Thermal cap on the level position in effect at `t_s`, if any.
    pub fn thermal_cap(&self, t_s: u32) -> Option<usize> {
        match *self {
            Scenario::ThermalCap {
                cap_from_s,
                cap_until_s,
                cap_level_pos,
                ..
            } if (cap_from_s..cap_until_s).contains(&t_s) => Some(cap_level_pos),
            _ => None,
        }
    }

    /// Arrival offsets (milliseconds into the window) for the one-second
    /// window starting at `t_s`, sorted ascending.
    pub fn arrivals_in_second(&self, t_s: u32, rng: &mut StdRng) -> Vec<f64> {
        Self::draw_arrivals(self.rate_at(t_s), rng)
    }

    /// Arrival offsets for one window at an explicit `rate`, sorted
    /// ascending. [`Scenario::arrivals_in_second`] is this at
    /// [`Scenario::rate_at`]; chaos overlays call it directly with a
    /// multiplied rate. The RNG call sequence (one Bernoulli draw for the
    /// fractional part, then one uniform draw per arrival) is part of the
    /// replay contract — golden traces depend on it.
    pub fn draw_arrivals(rate: f64, rng: &mut StdRng) -> Vec<f64> {
        if rate <= 0.0 {
            return Vec::new();
        }
        let whole = rate.floor() as usize;
        let fractional = rate - rate.floor();
        let count = whole + usize::from(rng.gen_bool(fractional));
        let mut offsets: Vec<f64> = (0..count).map(|_| rng.gen_range(0.0..1_000.0)).collect();
        offsets.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        offsets
    }
}

/// One simulated device of a fleet: its battery and the local events
/// (charger, thermal cap, cliff) that hit *this* device, independent of the
/// fleet-wide arrival curve.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable device name used in reports.
    pub name: String,
    /// Battery capacity in joules.
    pub battery_capacity_j: f64,
    /// Initial state of charge in `(0, 1]` (fleets are heterogeneous: some
    /// devices start the trace half empty).
    pub initial_soc: f64,
    /// Charging power in watts once the charger is plugged, 0 for none.
    pub charge_w: f64,
    /// Second at which this device's charger is plugged in.
    pub charge_from_s: u32,
    /// Thermal cap on this device as `(from_s, until_s, max_level_pos)`.
    pub thermal_cap: Option<(u32, u32, usize)>,
    /// Instant battery loss as `(at_s, fraction_of_capacity)`.
    pub cliff: Option<(u32, f64)>,
}

impl DeviceProfile {
    /// A device with no charger, cap or cliff.
    pub fn new(name: &str, battery_capacity_j: f64, initial_soc: f64) -> Self {
        Self {
            name: name.to_string(),
            battery_capacity_j,
            initial_soc,
            charge_w: 0.0,
            charge_from_s: 0,
            thermal_cap: None,
            cliff: None,
        }
    }

    /// Plugs a charger of `charge_w` watts in at `from_s`.
    pub fn with_charger(mut self, from_s: u32, charge_w: f64) -> Self {
        self.charge_from_s = from_s;
        self.charge_w = charge_w;
        self
    }

    /// Caps the device at `max_level_pos` during `[from_s, until_s)`.
    pub fn with_thermal_cap(mut self, from_s: u32, until_s: u32, max_level_pos: usize) -> Self {
        self.thermal_cap = Some((from_s, until_s, max_level_pos));
        self
    }

    /// Drops `fraction` of the battery capacity instantly at `at_s`.
    pub fn with_cliff(mut self, at_s: u32, fraction: f64) -> Self {
        self.cliff = Some((at_s, fraction));
        self
    }

    /// Charging power flowing into this device's battery at `t_s`, in watts.
    pub fn charge_w_at(&self, t_s: u32) -> f64 {
        if self.charge_w > 0.0 && t_s >= self.charge_from_s {
            self.charge_w
        } else {
            0.0
        }
    }

    /// Thermal cap on the level position in effect at `t_s`, if any.
    pub fn thermal_cap_at(&self, t_s: u32) -> Option<usize> {
        match self.thermal_cap {
            Some((from_s, until_s, pos)) if (from_s..until_s).contains(&t_s) => Some(pos),
            _ => None,
        }
    }

    /// Instantaneous battery loss (fraction of capacity) during `t_s`.
    pub fn battery_cliff_at(&self, t_s: u32) -> Option<f64> {
        match self.cliff {
            Some((at_s, drop)) if t_s == at_s => Some(drop),
            _ => None,
        }
    }

    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.battery_capacity_j > 0.0 && self.battery_capacity_j.is_finite()) {
            return Err(format!(
                "{}: battery_capacity_j must be positive",
                self.name
            ));
        }
        if !(self.initial_soc > 0.0 && self.initial_soc <= 1.0) {
            return Err(format!("{}: initial_soc must be in (0, 1]", self.name));
        }
        if !(self.charge_w >= 0.0 && self.charge_w.is_finite()) {
            return Err(format!("{}: charge_w must be non-negative", self.name));
        }
        if let Some((at_s, drop)) = self.cliff {
            let _ = at_s;
            if !(0.0..=1.0).contains(&drop) {
                return Err(format!("{}: cliff drop must be in [0, 1]", self.name));
            }
        }
        Ok(())
    }
}

/// A fleet trace: one fleet-wide arrival curve (requests hit the *router*,
/// not a particular device) plus per-device profiles for the batteries and
/// local events.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetScenario {
    /// Trace name for reports.
    pub name: String,
    /// Fleet-wide arrival curve; only its rate, duration and background
    /// draw are used (per-device events come from the profiles).
    pub arrivals: Scenario,
    /// One profile per simulated device.
    pub devices: Vec<DeviceProfile>,
}

impl FleetScenario {
    /// The acceptance fleet trace: four heterogeneous devices under steady
    /// traffic, where battery headroom — not queue depth alone — decides
    /// who should serve:
    ///
    /// * `d0-cliff` starts full but loses 50% of its capacity in a
    ///   voltage-sag cliff at 40 s;
    /// * `d1-low` starts at 45% charge;
    /// * `d2-charging` starts at 60% but sits on a 2.5 W charger the whole
    ///   time;
    /// * `d3-throttled` starts full (on a slightly smaller battery) yet is
    ///   thermally capped to the lowest level during `[30, 90)` s.
    ///
    /// The numbers are tuned as a set with `examples/serve_fleet.rs`
    /// (72 req/s over 150 s, two workers per device, 250 ms deadline): the
    /// fleet has enough total energy to survive the trace only if routing
    /// leans on the charger and rations the batteries, which is what makes
    /// battery-headroom routing strictly beat round-robin and sticky there.
    pub fn heterogeneous_cliff() -> Self {
        let duration_s = 150;
        Self {
            name: "fleet-cliff-discharge".to_string(),
            arrivals: Scenario::ConstantDrain {
                duration_s,
                rps: 72.0,
                background_w: 0.03,
            },
            devices: vec![
                DeviceProfile::new("d0-cliff", 30.0, 1.0).with_cliff(40, 0.5),
                DeviceProfile::new("d1-low", 30.0, 0.45),
                DeviceProfile::new("d2-charging", 30.0, 0.60).with_charger(0, 2.5),
                DeviceProfile::new("d3-throttled", 26.0, 1.0).with_thermal_cap(30, 90, 0),
            ],
        }
    }

    /// A compressed 24 h diurnal trace over the same heterogeneous fleet:
    /// `seconds_per_hour` simulated seconds stand in for each hour of the
    /// day, so `seconds_per_hour = 3600` replays a real day and smaller
    /// values keep tests fast. The charger plugs in "overnight" (the last
    /// quarter of the day) and the thermal cap hits in the "afternoon".
    pub fn diurnal(seconds_per_hour: u32) -> Self {
        let period_s = 24 * seconds_per_hour;
        let hour = |h: u32| h * seconds_per_hour;
        Self {
            name: "fleet-diurnal-24h".to_string(),
            arrivals: Scenario::Diurnal {
                duration_s: period_s,
                trough_rps: 6.0,
                peak_rps: 48.0,
                period_s,
                background_w: 0.08,
            },
            devices: vec![
                DeviceProfile::new("d0-cliff", 30.0, 0.9).with_cliff(hour(10), 0.4),
                DeviceProfile::new("d1-low", 30.0, 0.45),
                DeviceProfile::new("d2-charging", 30.0, 0.7).with_charger(hour(18), 2.0),
                DeviceProfile::new("d3-throttled", 30.0, 1.0).with_thermal_cap(
                    hour(12),
                    hour(16),
                    0,
                ),
            ],
        }
    }

    /// Number of devices in the fleet.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Trace length in seconds.
    pub fn duration_s(&self) -> u32 {
        self.arrivals.duration_s()
    }

    /// Validates the trace.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.devices.is_empty() {
            return Err("a fleet needs at least one device".into());
        }
        for device in &self.devices {
            device.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn bursty_rate_alternates() {
        let s = Scenario::default_bursty();
        assert_eq!(s.rate_at(0), 60.0, "burst at window start");
        assert_eq!(s.rate_at(6), 30.0);
        assert_eq!(s.rate_at(20), 60.0);
        assert!(
            s.duration_s() >= 60,
            "acceptance trace is at least a minute"
        );
    }

    #[test]
    fn arrivals_match_rate_on_average_and_are_sorted() {
        let s = Scenario::ConstantDrain {
            duration_s: 60,
            rps: 5.5,
            background_w: 0.2,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut total = 0usize;
        for t in 0..400 {
            let a = s.arrivals_in_second(t, &mut rng);
            assert!(a.windows(2).all(|w| w[0] <= w[1]));
            assert!(a.iter().all(|&x| (0.0..1_000.0).contains(&x)));
            total += a.len();
        }
        let mean = total as f64 / 400.0;
        assert!(
            (mean - 5.5).abs() < 0.4,
            "mean arrivals {mean} should track 5.5"
        );
    }

    #[test]
    fn cliff_charge_and_cap_fire_at_the_right_times() {
        let cliff = Scenario::CliffDischarge {
            duration_s: 60,
            rps: 2.0,
            background_w: 0.2,
            cliff_at_s: 30,
            cliff_drop: 0.25,
        };
        assert_eq!(cliff.battery_cliff(29), None);
        assert_eq!(cliff.battery_cliff(30), Some(0.25));
        let charge = Scenario::ChargeWhileServing {
            duration_s: 60,
            rps: 2.0,
            background_w: 0.2,
            charge_from_s: 20,
            charge_w: 2.0,
        };
        assert_eq!(charge.charge_w(19), 0.0);
        assert_eq!(charge.charge_w(20), 2.0);
        let cap = Scenario::ThermalCap {
            duration_s: 60,
            rps: 2.0,
            background_w: 0.2,
            cap_from_s: 10,
            cap_until_s: 40,
            cap_level_pos: 0,
        };
        assert_eq!(cap.thermal_cap(9), None);
        assert_eq!(cap.thermal_cap(10), Some(0));
        assert_eq!(cap.thermal_cap(40), None);
    }

    #[test]
    fn diurnal_rate_troughs_at_midnight_and_peaks_at_noon() {
        let day = Scenario::Diurnal {
            duration_s: 240,
            trough_rps: 4.0,
            peak_rps: 40.0,
            period_s: 240,
            background_w: 0.1,
        };
        assert!((day.rate_at(0) - 4.0).abs() < 1e-9, "midnight trough");
        assert!((day.rate_at(120) - 40.0).abs() < 1e-9, "noon peak");
        let morning = day.rate_at(60);
        assert!((morning - 22.0).abs() < 1e-9, "quarter-day midpoint");
        // the curve is periodic and symmetric around noon
        assert!((day.rate_at(180) - morning).abs() < 1e-9);
        assert_eq!(day.name(), "diurnal");
    }

    #[test]
    fn device_profile_events_fire_at_their_windows() {
        let d = DeviceProfile::new("d", 20.0, 0.8)
            .with_charger(30, 2.0)
            .with_thermal_cap(10, 20, 0)
            .with_cliff(15, 0.3);
        assert!(d.validate().is_ok());
        assert_eq!(d.charge_w_at(29), 0.0);
        assert_eq!(d.charge_w_at(30), 2.0);
        assert_eq!(d.thermal_cap_at(9), None);
        assert_eq!(d.thermal_cap_at(10), Some(0));
        assert_eq!(d.thermal_cap_at(20), None);
        assert_eq!(d.battery_cliff_at(14), None);
        assert_eq!(d.battery_cliff_at(15), Some(0.3));
    }

    #[test]
    fn fleet_scenarios_validate_and_cover_the_issue_shapes() {
        let cliff = FleetScenario::heterogeneous_cliff();
        assert!(cliff.validate().is_ok());
        assert_eq!(cliff.device_count(), 4);
        // heterogeneous initial charge, one charger, a stagger of caps and
        // a cliff — the shapes the fleet acceptance trace must exercise
        assert!(cliff.devices.iter().any(|d| d.initial_soc < 0.5));
        assert!(cliff.devices.iter().any(|d| d.charge_w > 0.0));
        assert!(cliff.devices.iter().any(|d| d.thermal_cap.is_some()));
        assert!(cliff.devices.iter().any(|d| d.cliff.is_some()));

        let day = FleetScenario::diurnal(10);
        assert!(day.validate().is_ok());
        assert_eq!(day.duration_s(), 240);
        assert!(matches!(day.arrivals, Scenario::Diurnal { .. }));

        let empty = FleetScenario {
            name: "empty".into(),
            arrivals: Scenario::default_bursty(),
            devices: Vec::new(),
        };
        assert!(empty.validate().is_err());
        let bad = FleetScenario {
            name: "bad".into(),
            arrivals: Scenario::default_bursty(),
            devices: vec![DeviceProfile::new("d", 10.0, 0.0)],
        };
        assert!(bad.validate().is_err());
    }
}
