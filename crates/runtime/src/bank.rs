//! The model bank: one pre-materialised sparse model per V/F level.
//!
//! Offline, the Level-2 search picks one candidate pattern set per governor
//! level ([`rt3_core::SearchOutcome`]) — under any `rt3-search` optimizer
//! (the RL controller is the default; `rt3_core::run_level2_search_with`
//! accepts evolutionary/bandit/random/exhaustive alternatives), so better
//! search directly moves what this bank serves. Online, switching levels must be a
//! lightweight pattern-set swap, not a model rebuild — so the bank turns each
//! chosen pattern set into a [`BankedModel`]: the combined Level-1 ∧ Level-2
//! masks plus the block-sparse weights ([`PatternPrunedMatrix`]) the workers
//! execute. Entries build lazily on first use and live in a small LRU cache,
//! mirroring how a memory-constrained device would page pattern sets in and
//! out of its working set; the eviction/rebuild traffic is exactly what
//! [`MemoryModel::pattern_switch_cost`] charges for.

use rt3_hardware::{MemoryModel, SwitchCost};
use rt3_pruning::{combined_masks_and_weights, CandidatePatternSet, PatternSpace};
use rt3_sparse::{PatternPrunedMatrix, PatternSet};
use rt3_tensor::Matrix;
use rt3_transformer::{MaskSet, Model};

/// One ready-to-serve sparse model variant.
#[derive(Debug, Clone)]
pub struct BankedModel {
    /// Governor level position this variant serves (0 = lowest frequency).
    pub level_pos: usize,
    /// Target sparsity of the candidate pattern set.
    pub target_sparsity: f64,
    /// Combined backbone ∧ pattern masks.
    pub masks: MaskSet,
    /// Achieved overall sparsity of the combined masks.
    pub sparsity: f64,
    /// Block-sparse prunable weights, in model parameter order.
    pub weights: Vec<(String, PatternPrunedMatrix)>,
}

/// Reusable activation/output buffers for [`BankedModel::infer_with`], so a
/// steady-state worker allocates its matmul operands once and then serves
/// every micro-batch allocation-free (the compiled-plan kernel itself never
/// allocates — see `rt3_sparse::PatternPlan::matmul_into`).
#[derive(Debug, Default)]
pub struct InferScratch {
    rhs: Vec<f32>,
    out: Vec<f32>,
}

impl InferScratch {
    /// Empty scratch; buffers grow to the largest weight on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BankedModel {
    /// Runs one real sparse inference batch through every banked weight:
    /// each pattern-pruned matrix multiplies a deterministic activation
    /// block with `batch` columns. Returns a checksum of the outputs so the
    /// work cannot be optimised away and runs can be compared bit-for-bit.
    pub fn infer(&self, batch: usize) -> f64 {
        self.infer_with(batch, &mut InferScratch::new())
    }

    /// [`Self::infer`] with caller-owned buffers: identical checksum (same
    /// activations, same kernel, same summation order), but the rhs/output
    /// matrices are carved out of `scratch` instead of freshly allocated,
    /// which is what the worker pool runs per micro-batch.
    pub fn infer_with(&self, batch: usize, scratch: &mut InferScratch) -> f64 {
        self.infer_impl(batch, scratch, 1)
    }

    /// [`Self::infer_with`] with intra-matmul parallelism: every weight's
    /// matmul splits its block-row space across up to `workers` scoped
    /// threads (`PatternPrunedMatrix::par_matmul_dense_into`). The parallel
    /// kernel is bit-identical to the serial one for every worker count, so
    /// the checksum is too — this is how the pool saturates its workers
    /// when a dispatch window carries fewer batches than threads.
    pub fn infer_par_with(&self, batch: usize, scratch: &mut InferScratch, workers: usize) -> f64 {
        self.infer_impl(batch, scratch, workers)
    }

    fn infer_impl(&self, batch: usize, scratch: &mut InferScratch, workers: usize) -> f64 {
        let width = batch.max(1);
        let mut checksum = 0.0f64;
        for (idx, (_, weight)) in self.weights.iter().enumerate() {
            let cols = weight.cols();
            let mut rhs_buf = std::mem::take(&mut scratch.rhs);
            rhs_buf.clear();
            // cheap deterministic activations, distinct per weight; same
            // values (row-major) as the original `Matrix::from_fn` fill
            rhs_buf.extend((0..cols * width).map(|k| {
                let x = ((k / width) * 31 + (k % width) * 17 + idx * 7) % 13;
                x as f32 / 13.0 - 0.5
            }));
            let rhs = Matrix::from_vec(cols, width, rhs_buf);
            let mut out_buf = std::mem::take(&mut scratch.out);
            out_buf.resize(weight.rows() * width, 0.0);
            let mut out = Matrix::from_vec(weight.rows(), width, out_buf);
            if workers <= 1 {
                weight.matmul_dense_into(&rhs, &mut out);
            } else {
                weight.par_matmul_dense_into(&rhs, &mut out, workers);
            }
            checksum += out.frobenius_norm() as f64;
            scratch.rhs = rhs.into_vec();
            scratch.out = out.into_vec();
        }
        checksum
    }

    /// Number of stored (surviving) weight values across all banked weights.
    pub fn stored_values(&self) -> usize {
        self.weights.iter().map(|(_, w)| w.stored_values()).sum()
    }
}

/// Cache statistics of a [`ModelBank`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Entries served from cache.
    pub hits: u64,
    /// Entries built (cold or after eviction).
    pub builds: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

/// Pre-materialised per-level model variants with lazy build and LRU
/// eviction.
pub struct ModelBank<'m, M: Model> {
    model: &'m M,
    backbone: MaskSet,
    prunable: Vec<String>,
    /// One chosen candidate per governor level position (0 = lowest
    /// frequency).
    assignments: Vec<CandidatePatternSet>,
    entries: Vec<Option<BankedModel>>,
    /// Level positions ordered least- to most-recently used.
    recency: Vec<usize>,
    capacity: usize,
    memory: MemoryModel,
    total_blocks: usize,
    stats: BankStats,
}

impl<'m, M: Model> ModelBank<'m, M> {
    /// Builds a bank over the best solution of a Level-2 search.
    ///
    /// `actions` are candidate indices ordered as the paper orders sub-models
    /// — from the *highest*-frequency level (M1) down — while bank slots are
    /// governor level positions (0 = lowest frequency), so the assignment is
    /// reversed here. `capacity` bounds how many variants stay materialised
    /// at once (a capacity of `actions.len()` keeps everything resident).
    ///
    /// # Panics
    ///
    /// Panics if `actions` is empty, an action indexes outside `space`, or
    /// `capacity` is zero.
    pub fn new(
        model: &'m M,
        backbone: MaskSet,
        space: &PatternSpace,
        actions: &[usize],
        memory: MemoryModel,
        capacity: usize,
    ) -> Self {
        assert!(
            !actions.is_empty(),
            "at least one level assignment is required"
        );
        assert!(capacity > 0, "bank capacity must be positive");
        let assignments: Vec<CandidatePatternSet> = actions
            .iter()
            .rev()
            .map(|&a| {
                assert!(a < space.len(), "action {a} outside the pattern space");
                space.candidates()[a].clone()
            })
            .collect();
        let prunable = model.prunable_parameter_names();
        let psize = space.pattern_size();
        let total_blocks = model
            .parameters()
            .iter()
            .filter(|(name, _)| prunable.contains(name))
            .map(|(_, w)| w.rows().div_ceil(psize) * w.cols().div_ceil(psize))
            .sum();
        let levels = assignments.len();
        Self {
            model,
            backbone,
            prunable,
            assignments,
            entries: (0..levels).map(|_| None).collect(),
            recency: Vec::with_capacity(levels),
            capacity,
            memory,
            total_blocks,
            stats: BankStats::default(),
        }
    }

    /// Number of governor levels the bank serves.
    pub fn levels(&self) -> usize {
        self.assignments.len()
    }

    /// The candidate pattern set assigned to a level position.
    pub fn pattern_set(&self, level_pos: usize) -> &PatternSet {
        &self.assignments[level_pos].set
    }

    /// Target sparsity assigned to a level position.
    pub fn target_sparsity(&self, level_pos: usize) -> f64 {
        self.assignments[level_pos].sparsity
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> BankStats {
        self.stats
    }

    /// Total `psize × psize` blocks across the prunable weights (the unit of
    /// the switch-cost model).
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Cost of swapping the pattern set of `level_pos` into the working set.
    pub fn switch_cost(&self, level_pos: usize) -> SwitchCost {
        self.memory
            .pattern_switch_cost(&self.assignments[level_pos].set, self.total_blocks)
    }

    /// Builds the variant for a level from scratch, bypassing the cache.
    /// Deterministic: two cold rebuilds produce bit-identical masks and
    /// weights (the invariant the bank's caching relies on). The cost-model
    /// calibration pass ([`crate::cost::calibrate`]) also builds its timing
    /// probes through here, so measuring leaves the serving bank's
    /// residency and LRU statistics untouched.
    ///
    /// Masks and executable weights come out of one
    /// [`combined_masks_and_weights`] pass, so a V/F switch pays a single
    /// plan compilation per weight instead of the two `from_dense`
    /// lowerings the pre-plan bank performed.
    pub fn rebuild_cold(&self, level_pos: usize) -> BankedModel {
        let candidate = &self.assignments[level_pos];
        let (masks, weights) =
            combined_masks_and_weights(self.model, &self.backbone, &self.prunable, &candidate.set);
        let sparsity = masks.overall_sparsity();
        BankedModel {
            level_pos,
            target_sparsity: candidate.sparsity,
            masks,
            sparsity,
            weights,
        }
    }

    /// The variant for `level_pos`, building it on a cache miss and evicting
    /// the least-recently-used variant when over capacity.
    pub fn get(&mut self, level_pos: usize) -> &BankedModel {
        assert!(
            level_pos < self.entries.len(),
            "level position out of range"
        );
        if self.entries[level_pos].is_some() {
            self.stats.hits += 1;
        } else {
            self.entries[level_pos] = Some(self.rebuild_cold(level_pos));
            self.stats.builds += 1;
        }
        self.touch(level_pos);
        self.evict_over_capacity(level_pos);
        self.entries[level_pos]
            .as_ref()
            .expect("entry just ensured")
    }

    /// Whether the variant for `level_pos` is currently materialised.
    pub fn is_resident(&self, level_pos: usize) -> bool {
        self.entries[level_pos].is_some()
    }

    fn touch(&mut self, level_pos: usize) {
        self.recency.retain(|&p| p != level_pos);
        self.recency.push(level_pos);
    }

    fn evict_over_capacity(&mut self, keep: usize) {
        while self.recency.len() > self.capacity {
            let victim = self.recency[0];
            if victim == keep {
                // capacity of 1 with the active entry first: nothing else to
                // evict without dropping the entry we are about to return
                if self.recency.len() == 1 {
                    break;
                }
                self.recency.swap(0, 1);
                continue;
            }
            self.recency.remove(0);
            self.entries[victim] = None;
            self.stats.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt3_pruning::{
        block_prune_model, generate_pattern_space, BlockPruningConfig, PatternSpaceConfig,
    };
    use rt3_transformer::{TransformerConfig, TransformerLm};

    fn setup() -> (TransformerLm, MaskSet, PatternSpace) {
        let model = TransformerLm::new(TransformerConfig::tiny(32), 5);
        let backbone = block_prune_model(&model, &BlockPruningConfig::default());
        let space = generate_pattern_space(
            &model,
            &backbone,
            &[0.4, 0.6, 0.8],
            &PatternSpaceConfig {
                pattern_size: 4,
                patterns_per_set: 2,
                sample_fraction: 0.5,
                seed: 2,
            },
        );
        (model, backbone, space)
    }

    #[test]
    fn bank_reverses_action_order_and_builds_lazily() {
        let (model, backbone, space) = setup();
        // M1 (highest frequency) gets the densest candidate 0
        let mut bank = ModelBank::new(
            &model,
            backbone,
            &space,
            &[0, 1, 2],
            MemoryModel::odroid_xu3(),
            3,
        );
        assert_eq!(bank.levels(), 3);
        // slot 0 = lowest frequency = last action = sparsest candidate
        assert!(bank.target_sparsity(0) > bank.target_sparsity(2));
        assert_eq!(bank.stats().builds, 0);
        let sparsity_low = bank.get(0).sparsity;
        assert_eq!(bank.stats().builds, 1);
        let sparsity_high = bank.get(2).sparsity;
        assert!(sparsity_low >= sparsity_high);
        let _ = bank.get(0);
        assert_eq!(bank.stats().hits, 1);
        assert_eq!(bank.stats().builds, 2);
    }

    #[test]
    fn lru_eviction_respects_capacity_and_rebuilds_identically() {
        let (model, backbone, space) = setup();
        let mut bank = ModelBank::new(
            &model,
            backbone,
            &space,
            &[0, 1, 2],
            MemoryModel::odroid_xu3(),
            2,
        );
        let first = bank.get(0).masks.clone();
        let _ = bank.get(1);
        let _ = bank.get(2); // evicts level 0
        assert_eq!(bank.stats().evictions, 1);
        assert!(!bank.is_resident(0));
        assert!(bank.is_resident(1) && bank.is_resident(2));
        let rebuilt = bank.get(0).masks.clone(); // evicts level 1
        assert_eq!(
            first, rebuilt,
            "rebuild after eviction must be bit-identical"
        );
        assert!(!bank.is_resident(1));
    }

    #[test]
    fn switch_cost_is_positive_and_grows_with_patterns() {
        let (model, backbone, space) = setup();
        let bank = ModelBank::new(
            &model,
            backbone,
            &space,
            &[0, 1, 2],
            MemoryModel::odroid_xu3(),
            3,
        );
        assert!(bank.total_blocks() > 0);
        let cost = bank.switch_cost(0);
        assert!(cost.time_ms > 0.0 && cost.bytes_moved > 0);
    }

    #[test]
    fn banked_inference_is_deterministic_and_nontrivial() {
        let (model, backbone, space) = setup();
        let mut bank = ModelBank::new(
            &model,
            backbone,
            &space,
            &[0, 1, 2],
            MemoryModel::odroid_xu3(),
            3,
        );
        let banked = bank.get(1);
        let a = banked.infer(4);
        let b = banked.infer(4);
        assert_eq!(a, b, "inference checksum must be deterministic");
        assert!(a.is_finite() && a != 0.0);
        assert!(banked.stored_values() > 0);
    }
}
