//! `rt3-chaos`: closed-loop clients, a compositional fault-scenario DSL
//! and a global invariant harness for the fleet.
//!
//! Every open-loop trace in [`crate::Scenario`] feeds requests on a fixed
//! schedule regardless of what the fleet does with them. Real mobile
//! traffic is *closed-loop*: clients bound their outstanding requests,
//! retry failures with exponential backoff and jitter, and abandon after
//! enough misses — which is exactly the feedback that turns one device
//! death into a retry storm. This module closes the loop:
//!
//! * [`ChaosScenario`] — a base [`crate::FleetScenario`] plus composable
//!   [`ChaosOverlay`]s (flash crowds, correlated regional charge cycles,
//!   mid-burst device death, staggered thermal waves). Named compositions
//!   ([`ChaosScenario::retry_storm`], [`ChaosScenario::flash_crowd`], …)
//!   cover the ROADMAP shapes, and [`ChaosScenario::generate`] draws a
//!   random composition from a seed for property fuzzing.
//! * [`ClientPolicy`] — the retry/backoff/abandon state machine of the
//!   simulated client population, deterministic under the fleet seed.
//! * [`Fleet::run_chaos`](crate::Fleet::run_chaos) — replays a chaos
//!   scenario with closed-loop clients and returns a [`ChaosReport`]
//!   (the usual [`crate::FleetReport`] plus a [`ClientReport`] with
//!   retry amplification and abandon rates).
//! * [`check_invariants`] — the global invariant harness: no request
//!   silently lost (attempt and job conservation, reconciled against
//!   telemetry counters), battery monotone between charge events, report
//!   aggregates consistent with per-device snapshots, retry counts
//!   bounded by policy.
//!
//! See DESIGN.md §11 for the DSL grammar and the full invariant list.

mod clients;
mod driver;
mod invariants;
mod scenario;

pub use clients::{ClientPolicy, ClientReport};
pub use driver::ChaosReport;
pub use invariants::check_invariants;
pub use scenario::{ChaosOverlay, ChaosScenario};
