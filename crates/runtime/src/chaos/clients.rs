//! The closed-loop client population: bounded outstanding work, a
//! timeout-retry state machine with exponential backoff and jitter, and
//! abandonment after a bounded number of attempts.
//!
//! A *job* is one unit of client intent ("get me an inference"); an
//! *attempt* is one request issued for it. The state machine per job:
//!
//! ```text
//!             ┌────────────── retry (backoff + jitter) ──────────────┐
//!             ▼                                                      │
//! issue → OUTSTANDING ─ completed on time ─────────────→ SUCCEEDED   │
//!             │        ─ completed late (retry_on_late) ─────────────┤
//!             │        ─ rejected by every device ───────────────────┤
//!             │        ─ dropped by a battery death ─────────────────┤
//!             │                                          attempts = max?
//!             │                                               │ yes
//!             └─ trace ends first ──→ PENDING            ABANDONED
//! ```
//!
//! New jobs are born from the (overlay-scaled) arrival curve, but the
//! population is finite: when `population × max_outstanding` jobs are
//! already open, a would-be arrival is *suppressed* — the closed-loop
//! feedback that distinguishes this from an open-loop trace.

/// Retry/backoff/abandon behaviour of the simulated client population.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientPolicy {
    /// Number of clients in the population.
    pub population: usize,
    /// Outstanding jobs each client tolerates; the fleet-wide backlog is
    /// capped at `population × max_outstanding` open jobs.
    pub max_outstanding: usize,
    /// Attempts per job, counting the first (≥ 1); the job is abandoned
    /// when they are exhausted.
    pub max_attempts: u32,
    /// Backoff before the first retry, milliseconds.
    pub backoff_base_ms: f64,
    /// Multiplier applied to the backoff per further retry (≥ 1).
    pub backoff_factor: f64,
    /// Uniform jitter added to every backoff, `[0, jitter_ms)` ms.
    pub jitter_ms: f64,
    /// Whether a completion past its deadline counts as a miss and is
    /// retried (`true`, the default) or grudgingly accepted (`false`).
    pub retry_on_late: bool,
}

impl Default for ClientPolicy {
    fn default() -> Self {
        Self {
            population: 256,
            max_outstanding: 1,
            max_attempts: 4,
            backoff_base_ms: 200.0,
            backoff_factor: 2.0,
            jitter_ms: 100.0,
            retry_on_late: true,
        }
    }
}

impl ClientPolicy {
    /// The fleet-wide cap on open jobs.
    pub fn max_backlog(&self) -> usize {
        self.population.saturating_mul(self.max_outstanding)
    }

    /// Backoff (without jitter) before retry number `retry` (1-based):
    /// `backoff_base_ms × backoff_factor^(retry − 1)`.
    pub fn backoff_ms(&self, retry: u32) -> f64 {
        self.backoff_base_ms * self.backoff_factor.powi(retry.saturating_sub(1) as i32)
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.population == 0 || self.max_outstanding == 0 {
            return Err("client population and max_outstanding must be positive".into());
        }
        if self.max_attempts == 0 {
            return Err("max_attempts must be at least 1".into());
        }
        if !(self.backoff_base_ms.is_finite() && self.backoff_base_ms >= 0.0) {
            return Err("backoff_base_ms must be non-negative".into());
        }
        if !(self.backoff_factor.is_finite() && self.backoff_factor >= 1.0) {
            return Err("backoff_factor must be at least 1".into());
        }
        if !(self.jitter_ms.is_finite() && self.jitter_ms >= 0.0) {
            return Err("jitter_ms must be non-negative".into());
        }
        Ok(())
    }
}

/// What the client population experienced over one chaos run. Attempt
/// counters partition `attempts`; job counters partition `jobs` — the
/// conservation laws [`super::check_invariants`] enforces.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClientReport {
    /// Jobs issued (first attempts).
    pub jobs: u64,
    /// Would-be arrivals suppressed because the population was saturated
    /// (every client already at `max_outstanding`).
    pub suppressed: u64,
    /// Requests issued, counting first attempts and retries.
    pub attempts: u64,
    /// Retries issued (`attempts − jobs`).
    pub retries: u64,
    /// Jobs resolved by an on-time completion.
    pub succeeded: u64,
    /// Jobs resolved by a late completion the policy accepted
    /// (`retry_on_late == false` only).
    pub succeeded_late: u64,
    /// Jobs abandoned after `max_attempts` failed attempts.
    pub abandoned: u64,
    /// Jobs still open when the trace ended (attempt in flight, or a retry
    /// scheduled past the end).
    pub pending_at_end: u64,
    /// Attempts that completed on time.
    pub attempt_completed: u64,
    /// Attempts that completed past their deadline.
    pub attempt_late: u64,
    /// Attempts no device would admit (rejected everywhere / all dead).
    pub attempt_rejected: u64,
    /// Attempts dropped from a dead device's queue.
    pub attempt_dropped_dead: u64,
    /// Attempts still queued or in flight when the trace ended.
    pub attempt_outstanding: u64,
}

impl ClientReport {
    /// Requests issued per job — 1.0 means no retries; the retry-storm
    /// figure of merit (how much the feedback loop amplified load).
    pub fn retry_amplification(&self) -> f64 {
        if self.jobs == 0 {
            1.0
        } else {
            self.attempts as f64 / self.jobs as f64
        }
    }

    /// Fraction of jobs abandoned after exhausting their attempts.
    pub fn abandon_rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.abandoned as f64 / self.jobs as f64
        }
    }

    /// Fraction of jobs resolved on time.
    pub fn success_rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.succeeded as f64 / self.jobs as f64
        }
    }

    /// One-line client-side summary.
    pub fn summary(&self) -> String {
        format!(
            "jobs {:>6} (suppressed {:>5}) attempts {:>6} amp {:>4.2} \
             ok {:>5.1}% abandoned {:>5.1}% pending {:>4}",
            self.jobs,
            self.suppressed,
            self.attempts,
            self.retry_amplification(),
            100.0 * self.success_rate(),
            100.0 * self.abandon_rate(),
            self.pending_at_end,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_geometrically() {
        let policy = ClientPolicy {
            backoff_base_ms: 100.0,
            backoff_factor: 2.0,
            ..ClientPolicy::default()
        };
        assert_eq!(policy.backoff_ms(1), 100.0);
        assert_eq!(policy.backoff_ms(2), 200.0);
        assert_eq!(policy.backoff_ms(4), 800.0);
    }

    #[test]
    fn policy_validation_catches_degenerate_settings() {
        assert!(ClientPolicy::default().validate().is_ok());
        for bad in [
            ClientPolicy {
                population: 0,
                ..ClientPolicy::default()
            },
            ClientPolicy {
                max_attempts: 0,
                ..ClientPolicy::default()
            },
            ClientPolicy {
                backoff_factor: 0.5,
                ..ClientPolicy::default()
            },
            ClientPolicy {
                jitter_ms: f64::NAN,
                ..ClientPolicy::default()
            },
        ] {
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn report_rates_are_safe_on_empty_runs() {
        let empty = ClientReport::default();
        assert_eq!(empty.retry_amplification(), 1.0);
        assert_eq!(empty.abandon_rate(), 0.0);
        assert_eq!(empty.success_rate(), 0.0);
    }
}
