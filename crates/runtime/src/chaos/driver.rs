//! The chaos replay driver: [`Fleet::run_chaos`] plays a [`ChaosScenario`]
//! with a closed-loop client population instead of the open-loop arrival
//! stream of [`Fleet::run`].
//!
//! The window loop mirrors [`Fleet::run`] exactly (begin windows → route
//! events in offset order with failover → end windows), with two changes:
//! the arrival rate is scaled by the active flash-crowd multiplier, and
//! every routed request is an *attempt* owned by a client job. Window-end
//! outcomes ([`crate::Completion`]s and dead-queue drops) are fed back to
//! the owning job, which retries with backoff + jitter or abandons per the
//! [`super::ClientPolicy`]. Retries are quantised to window granularity:
//! a failure in window `t` retries no earlier than window `t + 1` (its
//! exact due time is preserved inside the target window as the arrival
//! offset).
//!
//! Determinism: arrivals replay from the fleet seed exactly as in
//! [`Fleet::run`]; client jitter draws from an independent RNG stream
//! (`seed ⊕ CLIENT_SEED_SALT`) so closing the loop does not perturb the
//! arrival sequence golden traces pin down.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rt3_telemetry::TelemetrySnapshot;
use rt3_transformer::Model;

use crate::engine::{WINDOW_MS, WINDOW_S};
use crate::fleet::{DeviceSnapshot, Fleet};
use crate::report::FleetReport;
use crate::scenario::Scenario;
use crate::scheduler::Request;
use crate::telemetry::{ChaosTelemetry, FleetTelemetry};

use super::clients::{ClientPolicy, ClientReport};
use super::scenario::ChaosScenario;

/// Salt XORed into the fleet seed for the client-side RNG stream, so
/// client jitter never consumes draws from the arrival stream.
const CLIENT_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Everything one chaos run produced: the fleet's view and the clients'.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Chaos scenario name.
    pub chaos: String,
    /// Per-device and router outcomes, exactly as an open-loop
    /// [`Fleet::run`] would report them (its `arrivals` are the attempts
    /// the clients issued).
    pub fleet: FleetReport,
    /// The client population's outcomes.
    pub clients: ClientReport,
    /// Client-side counters mirroring [`ChaosReport::clients`] (`None`
    /// when telemetry is off). Kept independently by the telemetry layer
    /// so the invariant harness can reconcile the two bookkeepers.
    pub client_telemetry: Option<TelemetrySnapshot>,
}

impl ChaosReport {
    /// Drops every wall-clock-measured telemetry series (bank build and
    /// pool batch timings) from the report. What remains is a pure
    /// function of the scenario and seed, so two scrubbed reports of the
    /// same replay compare bit-exactly — the form the replay-exactness
    /// tests assert on.
    pub fn scrub_wall_clock(&mut self) {
        if let Some(t) = &mut self.fleet.telemetry {
            t.scrub_wall_clock();
        }
        for device in &mut self.fleet.devices {
            if let Some(t) = &mut device.telemetry {
                t.scrub_wall_clock();
            }
        }
        if let Some(t) = &mut self.client_telemetry {
            t.scrub_wall_clock();
        }
    }

    /// One-line summary: fleet outcome plus client-side amplification.
    pub fn summary(&self) -> String {
        format!(
            "{:<20} {:<14} {} | fleet miss {:>5.1}% deaths {}",
            self.chaos,
            self.fleet.routing,
            self.clients.summary(),
            100.0 * self.fleet.miss_rate(),
            self.fleet.deaths(),
        )
    }
}

/// One client job's mutable state during the replay.
struct Job {
    /// Attempts issued so far (first attempt included).
    attempts: u32,
    /// Resolved means succeeded, succeeded-late or abandoned.
    resolved: bool,
}

/// One routable event inside a window: a brand-new arrival or a due retry.
struct WindowEvent {
    offset_ms: f64,
    /// `None` = new arrival (job created at issue time, unless
    /// suppressed); `Some(job)` = retry of an existing open job.
    retry_of: Option<usize>,
}

/// The client population's live state: jobs, the outstanding-attempt map,
/// per-window retry queues and the two bookkeepers ([`ClientReport`] and
/// [`ChaosTelemetry`]) the invariant harness later reconciles.
struct ClientLoop<'p> {
    policy: &'p ClientPolicy,
    duration_s: u32,
    jobs: Vec<Job>,
    open_jobs: u64,
    /// Attempt request id → owning job index.
    outstanding: HashMap<u64, usize>,
    /// Retries due per window, as `(offset_ms, job)` pairs.
    retry_due: Vec<Vec<(f64, usize)>>,
    report: ClientReport,
    rng: StdRng,
    telemetry: Option<ChaosTelemetry>,
}

impl<'p> ClientLoop<'p> {
    fn new(
        policy: &'p ClientPolicy,
        duration_s: u32,
        seed: u64,
        telemetry: Option<ChaosTelemetry>,
    ) -> Self {
        Self {
            policy,
            duration_s,
            jobs: Vec::new(),
            open_jobs: 0,
            outstanding: HashMap::new(),
            retry_due: vec![Vec::new(); duration_s as usize],
            report: ClientReport::default(),
            rng: StdRng::seed_from_u64(seed ^ CLIENT_SEED_SALT),
            telemetry,
        }
    }

    /// Tries to open a new job for a fresh arrival; `None` when the
    /// population is saturated and the arrival is suppressed instead.
    fn open_job(&mut self) -> Option<usize> {
        if self.open_jobs >= self.policy.max_backlog() as u64 {
            self.report.suppressed += 1;
            if let Some(ct) = &mut self.telemetry {
                let id = ct.suppressed;
                ct.add(id, 1);
            }
            return None;
        }
        self.jobs.push(Job {
            attempts: 0,
            resolved: false,
        });
        self.open_jobs += 1;
        self.report.jobs += 1;
        if let Some(ct) = &mut self.telemetry {
            let id = ct.jobs;
            ct.add(id, 1);
        }
        Some(self.jobs.len() - 1)
    }

    /// Counts one issued attempt for `job_idx` (first attempt or retry).
    fn issue_attempt(&mut self, job_idx: usize, is_retry: bool) {
        self.jobs[job_idx].attempts += 1;
        self.report.attempts += 1;
        if is_retry {
            self.report.retries += 1;
        }
        if let Some(ct) = &mut self.telemetry {
            let id = ct.attempts;
            ct.add(id, 1);
            if is_retry {
                let id = ct.retries;
                ct.add(id, 1);
            }
        }
    }

    /// Resolves `job_idx` (success, late-accept or abandon), closing it.
    fn close_job(&mut self, job_idx: usize) {
        debug_assert!(!self.jobs[job_idx].resolved, "a job resolves once");
        self.jobs[job_idx].resolved = true;
        self.open_jobs -= 1;
        if let Some(ct) = &mut self.telemetry {
            let hist = ct.attempts_per_job;
            ct.record(hist, self.jobs[job_idx].attempts as f64);
        }
    }

    /// Handles a failed attempt at `fail_ms` in window `t_s`: schedules a
    /// backoff-jittered retry, or abandons the job when its attempts are
    /// exhausted. A retry due past the trace end leaves the job open — it
    /// is counted as pending, never silently dropped.
    fn fail_attempt(&mut self, job_idx: usize, fail_ms: f64, t_s: u32) {
        if self.jobs[job_idx].attempts >= self.policy.max_attempts {
            self.report.abandoned += 1;
            if let Some(ct) = &mut self.telemetry {
                let id = ct.abandoned;
                ct.add(id, 1);
            }
            self.close_job(job_idx);
            return;
        }
        let backoff = self.policy.backoff_ms(self.jobs[job_idx].attempts);
        let jitter = if self.policy.jitter_ms > 0.0 {
            self.rng.gen_range(0.0..self.policy.jitter_ms)
        } else {
            0.0
        };
        let retry_ms = fail_ms + backoff + jitter;
        // retries are quantised to windows and never land in the current
        // one (its events are already being replayed)
        let window = ((retry_ms / WINDOW_MS) as u32).max(t_s + 1);
        if window >= self.duration_s {
            return; // stays open; counted as pending at trace end
        }
        let offset = (retry_ms - window as f64 * WINDOW_MS).clamp(0.0, WINDOW_MS - 1e-6);
        self.retry_due[window as usize].push((offset, job_idx));
    }
}

impl<'m, M: Model> Fleet<'m, M> {
    /// Plays `chaos` to completion with closed-loop clients and reports
    /// both sides of the loop. The fleet must have been built over
    /// [`ChaosScenario::fleet_scenario`] — the materialised profiles are
    /// what the devices replay.
    ///
    /// # Panics
    ///
    /// Panics if the fleet's scenario is not the materialisation of
    /// `chaos`, or the composition fails validation.
    pub fn run_chaos(mut self, chaos: &ChaosScenario) -> ChaosReport {
        chaos.validate().expect("invalid chaos scenario");
        let scenario = chaos.fleet_scenario();
        assert_eq!(
            *self.scenario(),
            scenario,
            "fleet must be built from chaos.fleet_scenario()"
        );
        let duration_s = scenario.duration_s();
        let mut arrival_rng = StdRng::seed_from_u64(self.config.seed);
        let n = self.devices.len();
        let device_names: Vec<String> = scenario.devices.iter().map(|p| p.name.clone()).collect();
        let mut fleet_telemetry = FleetTelemetry::new(self.config.telemetry, &device_names);
        let mut clients = ClientLoop::new(
            &chaos.clients,
            duration_s,
            self.config.seed,
            ChaosTelemetry::new(self.config.telemetry),
        );
        let mut next_id = 0u64;
        let mut arrivals_total = 0u64;
        let mut unroutable = 0u64;

        for t_s in 0..duration_s {
            let now_ms = t_s as f64 * WINDOW_MS;
            let window_end_ms = now_ms + WINDOW_MS;

            // 1. per-device battery events, death checks, level decisions
            let mut serving = vec![false; n];
            for (i, device) in self.devices.iter_mut().enumerate() {
                let profile = &scenario.devices[i];
                serving[i] = device.begin_window(
                    t_s,
                    now_ms,
                    profile.battery_cliff_at(t_s),
                    profile.charge_w_at(t_s) * WINDOW_S,
                    profile.thermal_cap_at(t_s),
                );
            }

            // 2. this window's events: fresh arrivals at the overlay-scaled
            //    rate, merged with due retries, replayed in offset order
            let rate = scenario.arrivals.rate_at(t_s) * chaos.rate_multiplier_at(t_s);
            let mut events: Vec<WindowEvent> = Scenario::draw_arrivals(rate, &mut arrival_rng)
                .into_iter()
                .map(|offset_ms| WindowEvent {
                    offset_ms,
                    retry_of: None,
                })
                .collect();
            events.extend(
                std::mem::take(&mut clients.retry_due[t_s as usize])
                    .into_iter()
                    .map(|(offset_ms, job)| WindowEvent {
                        offset_ms,
                        retry_of: Some(job),
                    }),
            );
            events.sort_by(|a, b| {
                a.offset_ms
                    .partial_cmp(&b.offset_ms)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });

            let mut routed = vec![0u64; n];
            let mut rejected = vec![0u64; n];
            for event in events {
                let job_idx = match event.retry_of {
                    Some(job_idx) => job_idx,
                    None => match clients.open_job() {
                        Some(job_idx) => job_idx,
                        None => continue, // suppressed: population saturated
                    },
                };
                clients.issue_attempt(job_idx, event.retry_of.is_some());
                arrivals_total += 1;

                // route with failover, exactly as Fleet::run does
                let arrival_ms = now_ms + event.offset_ms;
                let snapshots: Vec<DeviceSnapshot> = self
                    .devices
                    .iter()
                    .map(|d| Self::snapshot(d, arrival_ms))
                    .collect();
                let order = self.router.order(&snapshots);
                let mut placed = None;
                for &i in &order {
                    let request = Request {
                        id: next_id,
                        arrival_ms,
                        deadline_ms: arrival_ms + self.config.deadline_budget_ms,
                    };
                    match self.devices[i].try_admit(request) {
                        Ok(()) => {
                            routed[i] += 1;
                            placed = Some(i);
                            break;
                        }
                        Err(_) => {
                            rejected[i] += 1;
                            if let Some(ft) = &mut fleet_telemetry {
                                let id = ft.failovers[i];
                                ft.add(id, 1);
                            }
                        }
                    }
                }
                if let Some(ft) = &mut fleet_telemetry {
                    let arrivals_id = ft.arrivals;
                    ft.add(arrivals_id, 1);
                    match placed {
                        Some(i) => {
                            let id = ft.routed[i];
                            ft.add(id, 1);
                        }
                        None => {
                            let id = ft.unroutable;
                            ft.add(id, 1);
                        }
                    }
                }
                match placed {
                    Some(_) => {
                        clients.outstanding.insert(next_id, job_idx);
                    }
                    None => {
                        unroutable += 1;
                        clients.report.attempt_rejected += 1;
                        if let Some(ct) = &mut clients.telemetry {
                            let id = ct.attempt_rejected;
                            ct.add(id, 1);
                        }
                        clients.fail_attempt(job_idx, arrival_ms, t_s);
                    }
                }
                self.router.commit(placed, n);
                next_id += 1;
            }

            // 3. per-device dispatch; completions and dead-queue drops feed
            //    back into the owning jobs
            for (i, device) in self.devices.iter_mut().enumerate() {
                if serving[i] {
                    let completions = device.end_window(
                        t_s,
                        window_end_ms,
                        routed[i],
                        rejected[i],
                        scenario.arrivals.background_w(t_s) * WINDOW_S,
                    );
                    for completion in completions {
                        let job_idx = clients
                            .outstanding
                            .remove(&completion.id)
                            .expect("every completion belongs to an outstanding attempt");
                        if completion.met_deadline {
                            clients.report.succeeded += 1;
                            clients.report.attempt_completed += 1;
                            if let Some(ct) = &mut clients.telemetry {
                                let id = ct.succeeded;
                                ct.add(id, 1);
                            }
                            clients.close_job(job_idx);
                        } else {
                            clients.report.attempt_late += 1;
                            if let Some(ct) = &mut clients.telemetry {
                                let id = ct.attempt_late;
                                ct.add(id, 1);
                            }
                            if chaos.clients.retry_on_late {
                                clients.fail_attempt(job_idx, completion.finish_ms, t_s);
                            } else {
                                clients.report.succeeded_late += 1;
                                clients.close_job(job_idx);
                            }
                        }
                    }
                } else {
                    let dropped = device.record_dead_window(t_s, routed[i]);
                    for request in dropped {
                        let job_idx = clients
                            .outstanding
                            .remove(&request.id)
                            .expect("every dropped request belongs to an outstanding attempt");
                        clients.report.attempt_dropped_dead += 1;
                        if let Some(ct) = &mut clients.telemetry {
                            let id = ct.attempt_dropped_dead;
                            ct.add(id, 1);
                        }
                        clients.fail_attempt(job_idx, window_end_ms, t_s);
                    }
                }
            }
        }

        // trace end: attempts still queued/in flight, and jobs waiting on a
        // retry that never came due, are pending — never silently dropped
        clients.report.attempt_outstanding = clients.outstanding.len() as u64;
        clients.report.pending_at_end = clients.open_jobs;
        if let Some(ct) = &mut clients.telemetry {
            let id = ct.attempt_outstanding;
            ct.add(id, clients.report.attempt_outstanding);
            let id = ct.pending_at_end;
            ct.add(id, clients.report.pending_at_end);
        }
        debug_assert_eq!(
            clients.jobs.iter().filter(|j| !j.resolved).count() as u64,
            clients.open_jobs,
            "open-job counter tracks unresolved jobs"
        );

        let routing = self.router.policy().label().to_string();
        let devices = self
            .devices
            .into_iter()
            .zip(scenario.devices)
            .map(|(device, profile)| device.into_report(profile.name, "adaptive".to_string()).0)
            .collect();
        ChaosReport {
            chaos: chaos.name.clone(),
            fleet: FleetReport {
                scenario: scenario.name,
                routing,
                arrivals: arrivals_total,
                unroutable,
                devices,
                telemetry: fleet_telemetry.map(|ft| ft.snapshot()),
            },
            clients: clients.report,
            client_telemetry: clients.telemetry.map(|ct| ct.snapshot()),
        }
    }
}
