//! The chaos scenario DSL: composable overlays over a base fleet trace.
//!
//! A [`ChaosScenario`] is a base [`FleetScenario`] plus an ordered list of
//! [`ChaosOverlay`]s. Overlays are *declarative*: traffic overlays scale
//! the arrival rate window-by-window, device overlays rewrite the matching
//! [`DeviceProfile`] slot (charger, thermal cap, cliff) when the scenario
//! is materialised by [`ChaosScenario::fleet_scenario`]. Because each
//! profile has one slot per event kind, a later overlay touching the same
//! slot of the same device wins — compositions read top-to-bottom.

use crate::fleet::{FleetConfig, RouterConfig, RoutingPolicy};
use crate::scenario::{DeviceProfile, FleetScenario, Scenario};
use crate::scheduler::SchedulerConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rt3_telemetry::{TelemetryConfig, TelemetryLevel};

use super::clients::ClientPolicy;

/// One layer of trouble composed onto a base fleet trace.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosOverlay {
    /// A flash crowd: the fleet-wide arrival rate is multiplied by
    /// `multiplier` during `[at_s, at_s + len_s)`. Overlapping flash
    /// crowds compound (multipliers multiply).
    FlashCrowd {
        /// Second the crowd arrives.
        at_s: u32,
        /// How long it stays, in seconds.
        len_s: u32,
        /// Rate multiplier while active (> 0; 2.0 doubles traffic).
        multiplier: f64,
    },
    /// A correlated regional charge cycle: every listed device plugs into
    /// a charger at the same instant (the diurnal "whole cell charges
    /// overnight" shape — exactly when sticky routing herds traffic).
    RegionalChargeCycle {
        /// Device indices into the base scenario's profile list; indices
        /// past the fleet are ignored.
        devices: Vec<usize>,
        /// Second the region plugs in.
        from_s: u32,
        /// Charging power per device, watts.
        charge_w: f64,
    },
    /// Mid-burst device death: the device loses its entire remaining
    /// battery at `at_s` (materialised as a 100% capacity cliff), dropping
    /// its queue and bouncing its traffic — with closed-loop clients, the
    /// seed of a retry storm.
    DeviceDeath {
        /// Device index into the base scenario's profile list.
        device: usize,
        /// Second the battery dies.
        at_s: u32,
    },
    /// A thermal wave rolling across the fleet: device `i` is capped at
    /// `cap_level_pos` during `[from_s + i·stagger_s, … + len_s)`, so the
    /// cap sweeps the fleet in index order instead of hitting everyone at
    /// once.
    ThermalWave {
        /// Second the wave reaches device 0.
        from_s: u32,
        /// Cap duration per device, seconds.
        len_s: u32,
        /// Delay between consecutive devices, seconds.
        stagger_s: u32,
        /// Maximum allowed level position while capped (0 = lowest).
        cap_level_pos: usize,
    },
}

/// A composed chaos scenario: base trace, overlays and the closed-loop
/// client policy that replays it.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosScenario {
    /// Scenario name for reports (`fleet_scenario()` carries it through).
    pub name: String,
    /// The open-loop fleet trace the overlays modify.
    pub base: FleetScenario,
    /// Overlays in composition order (later wins on slot conflicts).
    pub overlays: Vec<ChaosOverlay>,
    /// The client population's retry/backoff/abandon behaviour.
    pub clients: ClientPolicy,
}

impl ChaosScenario {
    /// A chaos scenario with no overlays and the default client policy.
    pub fn new(name: &str, base: FleetScenario) -> Self {
        Self {
            name: name.to_string(),
            base,
            overlays: Vec::new(),
            clients: ClientPolicy::default(),
        }
    }

    /// Adds one overlay (combinator style: `.with(…).with(…)`).
    #[must_use]
    pub fn with(mut self, overlay: ChaosOverlay) -> Self {
        self.overlays.push(overlay);
        self
    }

    /// Replaces the client policy.
    #[must_use]
    pub fn with_clients(mut self, clients: ClientPolicy) -> Self {
        self.clients = clients;
        self
    }

    /// The arrival-rate multiplier in effect at `t_s`: the product of every
    /// active [`ChaosOverlay::FlashCrowd`] (1.0 when none is active).
    pub fn rate_multiplier_at(&self, t_s: u32) -> f64 {
        let mut multiplier = 1.0;
        for overlay in &self.overlays {
            if let ChaosOverlay::FlashCrowd {
                at_s,
                len_s,
                multiplier: m,
            } = *overlay
            {
                if (at_s..at_s.saturating_add(len_s)).contains(&t_s) {
                    multiplier *= m;
                }
            }
        }
        multiplier
    }

    /// Materialises the device-side overlays into a plain
    /// [`FleetScenario`] a [`crate::Fleet`] can be built from: chargers,
    /// caps and cliffs are written into the profile slots in overlay
    /// order. Traffic overlays (flash crowds) do not appear here — the
    /// chaos driver applies [`ChaosScenario::rate_multiplier_at`] at
    /// replay time.
    pub fn fleet_scenario(&self) -> FleetScenario {
        let mut scenario = self.base.clone();
        scenario.name = self.name.clone();
        for overlay in &self.overlays {
            match overlay {
                ChaosOverlay::FlashCrowd { .. } => {}
                ChaosOverlay::RegionalChargeCycle {
                    devices,
                    from_s,
                    charge_w,
                } => {
                    for &i in devices {
                        if let Some(profile) = scenario.devices.get_mut(i) {
                            profile.charge_from_s = *from_s;
                            profile.charge_w = *charge_w;
                        }
                    }
                }
                ChaosOverlay::DeviceDeath { device, at_s } => {
                    if let Some(profile) = scenario.devices.get_mut(*device) {
                        profile.cliff = Some((*at_s, 1.0));
                    }
                }
                ChaosOverlay::ThermalWave {
                    from_s,
                    len_s,
                    stagger_s,
                    cap_level_pos,
                } => {
                    for (i, profile) in scenario.devices.iter_mut().enumerate() {
                        let start = from_s.saturating_add(stagger_s.saturating_mul(i as u32));
                        profile.thermal_cap =
                            Some((start, start.saturating_add(*len_s), *cap_level_pos));
                    }
                }
            }
        }
        scenario
    }

    /// Validates the composition.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.base.validate()?;
        self.clients.validate()?;
        let n = self.base.devices.len();
        for overlay in &self.overlays {
            match overlay {
                ChaosOverlay::FlashCrowd {
                    multiplier, len_s, ..
                } => {
                    if !(multiplier.is_finite() && *multiplier > 0.0) {
                        return Err("flash-crowd multiplier must be positive".into());
                    }
                    if *len_s == 0 {
                        return Err("flash-crowd length must be at least one window".into());
                    }
                }
                ChaosOverlay::RegionalChargeCycle { charge_w, .. } => {
                    if !(charge_w.is_finite() && *charge_w > 0.0) {
                        return Err("regional charge power must be positive".into());
                    }
                }
                ChaosOverlay::DeviceDeath { device, .. } => {
                    if *device >= n {
                        return Err(format!("device-death index {device} out of fleet (n={n})"));
                    }
                }
                ChaosOverlay::ThermalWave { len_s, .. } => {
                    if *len_s == 0 {
                        return Err("thermal-wave length must be at least one window".into());
                    }
                }
            }
        }
        // materialised profiles must still be valid (cliff in range etc.)
        self.fleet_scenario().validate()
    }

    /// The base trace chaos compositions stress: four heterogeneous
    /// devices under steady traffic, short enough for tests, hot enough
    /// that routing quality matters. Small batteries mean the fleet
    /// survives only if routing rations them.
    fn chaos_base(duration_s: u32, rps: f64) -> FleetScenario {
        FleetScenario {
            name: "chaos-base".to_string(),
            arrivals: Scenario::ConstantDrain {
                duration_s,
                rps,
                background_w: 0.03,
            },
            devices: vec![
                DeviceProfile::new("d0", 30.0, 1.0),
                DeviceProfile::new("d1", 30.0, 0.8),
                DeviceProfile::new("d2", 30.0, 0.6).with_charger(0, 2.0),
                DeviceProfile::new("d3", 26.0, 0.9),
            ],
        }
    }

    /// The serving configuration the chaos benchmarks run under: one
    /// worker and a 32-deep queue per device, a 200 ms deadline budget and
    /// counter-level telemetry (the invariant harness reconciles against
    /// it). Small on purpose — under [`ChaosScenario::retry_storm`] the
    /// flash crowd genuinely exceeds what the surviving devices can admit,
    /// so routing quality shows up in the client retry counters instead of
    /// being absorbed by slack capacity.
    pub fn storm_fleet_config(policy: RoutingPolicy, seed: u64) -> FleetConfig {
        FleetConfig {
            router: RouterConfig {
                policy,
                ..RouterConfig::default()
            },
            deadline_budget_ms: 200.0,
            scheduler: SchedulerConfig {
                workers: 1,
                queue_capacity: 32,
                ..SchedulerConfig::default()
            },
            real_inference: false,
            seed,
            telemetry: TelemetryConfig {
                level: TelemetryLevel::Counters,
                ..TelemetryConfig::default()
            },
            ..FleetConfig::default()
        }
    }

    /// The base trace for the retry storm: three healthy devices and one
    /// with a nearly shot battery that *reads* fully charged (`d3`: 0.1 J
    /// at 100%). Background drain is negligible, so d3's time of death is
    /// decided by how much traffic the router sends it — the policy-
    /// sensitive capacity loss the storm is built around.
    fn storm_base(duration_s: u32, rps: f64) -> FleetScenario {
        FleetScenario {
            name: "storm-base".to_string(),
            arrivals: Scenario::ConstantDrain {
                duration_s,
                rps,
                background_w: 0.001,
            },
            devices: vec![
                DeviceProfile::new("d0", 30.0, 1.0),
                DeviceProfile::new("d1", 30.0, 0.9),
                DeviceProfile::new("d2", 30.0, 0.6).with_charger(0, 2.0),
                DeviceProfile::new("d3", 0.1, 1.0),
            ],
        }
    }

    /// Named composition: a flash crowd that outgrows the fleet's admission
    /// capacity, a mid-crowd death of the strongest device, and aggressive
    /// clients — the retry-storm shape. Run it under
    /// [`ChaosScenario::storm_fleet_config`]: once `d0` dies, the crowd
    /// exceeds what the survivors can admit per window, rejected attempts
    /// retry into the next window, and the storm feeds itself until backoff
    /// and abandonment bleed it off. How hard it blows depends on `d3`,
    /// whose tiny battery dies when it is fed: predictive routing reads its
    /// EWMA time-to-death and starves it through the crowd, round-robin
    /// keeps feeding it and loses a second device mid-storm, and
    /// battery-aware — which ranks by state-of-charge *fraction* — is
    /// actively fooled by the full-reading battery.
    pub fn retry_storm() -> Self {
        Self::new("chaos-retry-storm", Self::storm_base(60, 56.0))
            .with(ChaosOverlay::FlashCrowd {
                at_s: 15,
                len_s: 20,
                multiplier: 2.0,
            })
            .with(ChaosOverlay::DeviceDeath {
                device: 0,
                at_s: 25,
            })
            .with_clients(ClientPolicy {
                max_attempts: 5,
                backoff_base_ms: 150.0,
                backoff_factor: 2.0,
                jitter_ms: 120.0,
                ..ClientPolicy::default()
            })
    }

    /// Named composition: a 3× flash crowd on an otherwise calm fleet.
    pub fn flash_crowd() -> Self {
        Self::new("chaos-flash-crowd", Self::chaos_base(60, 32.0)).with(ChaosOverlay::FlashCrowd {
            at_s: 20,
            len_s: 15,
            multiplier: 3.0,
        })
    }

    /// Named composition: a thermal wave sweeping the fleet while traffic
    /// holds steady — capacity shrinks one device at a time.
    pub fn thermal_wave() -> Self {
        Self::new("chaos-thermal-wave", Self::chaos_base(60, 40.0)).with(
            ChaosOverlay::ThermalWave {
                from_s: 10,
                len_s: 20,
                stagger_s: 8,
                cap_level_pos: 0,
            },
        )
    }

    /// Named composition: a correlated regional charge cycle — half the
    /// fleet plugs in at once mid-trace, flipping who the battery-aware
    /// router should prefer.
    pub fn charge_cycle() -> Self {
        Self::new("chaos-charge-cycle", Self::chaos_base(60, 40.0)).with(
            ChaosOverlay::RegionalChargeCycle {
                devices: vec![0, 1],
                from_s: 30,
                charge_w: 2.5,
            },
        )
    }

    /// Looks a named composition up (`retry-storm`, `flash-crowd`,
    /// `thermal-wave`, `charge-cycle`) — the `RT3_CHAOS_SCENARIO` values.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "retry-storm" => Some(Self::retry_storm()),
            "flash-crowd" => Some(Self::flash_crowd()),
            "thermal-wave" => Some(Self::thermal_wave()),
            "charge-cycle" => Some(Self::charge_cycle()),
            _ => None,
        }
    }

    /// Draws a random composition from `seed` for property fuzzing: 1–3
    /// overlays of random kinds over the chaos base trace, with a random
    /// (but sane) client policy. Every generated scenario validates; the
    /// invariant harness replays them in bulk.
    pub fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let duration_s = rng.gen_range(20..35u32);
        let rps = rng.gen_range(16.0..48.0f64);
        let mut chaos = Self::new(
            &format!("chaos-gen-{seed:#x}"),
            Self::chaos_base(duration_s, rps),
        );
        let n = chaos.base.devices.len();
        let overlay_count = rng.gen_range(1..=3usize);
        for _ in 0..overlay_count {
            let overlay = match rng.gen_range(0..4u32) {
                0 => ChaosOverlay::FlashCrowd {
                    at_s: rng.gen_range(0..duration_s / 2),
                    len_s: rng.gen_range(3..duration_s / 2),
                    multiplier: rng.gen_range(1.2..3.0),
                },
                1 => {
                    let count = rng.gen_range(1..=n);
                    ChaosOverlay::RegionalChargeCycle {
                        devices: (0..count).collect(),
                        from_s: rng.gen_range(0..duration_s),
                        charge_w: rng.gen_range(1.0..3.0),
                    }
                }
                2 => ChaosOverlay::DeviceDeath {
                    device: rng.gen_range(0..n),
                    at_s: rng.gen_range(duration_s / 4..duration_s),
                },
                _ => ChaosOverlay::ThermalWave {
                    from_s: rng.gen_range(0..duration_s / 2),
                    len_s: rng.gen_range(5..duration_s),
                    stagger_s: rng.gen_range(0..8),
                    cap_level_pos: 0,
                },
            };
            chaos = chaos.with(overlay);
        }
        chaos.clients = ClientPolicy {
            population: rng.gen_range(32..256),
            max_outstanding: 1,
            max_attempts: rng.gen_range(2..6),
            backoff_base_ms: rng.gen_range(100.0..400.0),
            backoff_factor: rng.gen_range(1.5..2.5),
            jitter_ms: rng.gen_range(0.0..150.0),
            retry_on_late: rng.gen_bool(0.8),
        };
        debug_assert!(chaos.validate().is_ok(), "generated scenario must validate");
        chaos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_crowds_compound_and_expire() {
        let chaos = ChaosScenario::new("t", ChaosScenario::chaos_base(30, 10.0))
            .with(ChaosOverlay::FlashCrowd {
                at_s: 5,
                len_s: 10,
                multiplier: 2.0,
            })
            .with(ChaosOverlay::FlashCrowd {
                at_s: 10,
                len_s: 10,
                multiplier: 3.0,
            });
        assert_eq!(chaos.rate_multiplier_at(4), 1.0);
        assert_eq!(chaos.rate_multiplier_at(5), 2.0);
        assert_eq!(chaos.rate_multiplier_at(10), 6.0, "overlaps compound");
        assert_eq!(chaos.rate_multiplier_at(14), 6.0);
        assert_eq!(chaos.rate_multiplier_at(15), 3.0);
        assert_eq!(chaos.rate_multiplier_at(20), 1.0);
    }

    #[test]
    fn overlays_materialise_into_profiles() {
        let chaos = ChaosScenario::new("t", ChaosScenario::chaos_base(40, 10.0))
            .with(ChaosOverlay::DeviceDeath {
                device: 1,
                at_s: 12,
            })
            .with(ChaosOverlay::RegionalChargeCycle {
                devices: vec![0, 3],
                from_s: 20,
                charge_w: 2.5,
            })
            .with(ChaosOverlay::ThermalWave {
                from_s: 5,
                len_s: 10,
                stagger_s: 2,
                cap_level_pos: 0,
            });
        let scenario = chaos.fleet_scenario();
        assert_eq!(scenario.name, "t");
        assert_eq!(
            scenario.devices[1].cliff,
            Some((12, 1.0)),
            "death = 100% cliff"
        );
        assert_eq!(scenario.devices[0].charge_from_s, 20);
        assert_eq!(scenario.devices[0].charge_w, 2.5);
        assert_eq!(scenario.devices[3].charge_w, 2.5);
        assert_eq!(scenario.devices[1].charge_w, 0.0);
        assert_eq!(
            scenario.devices[2].thermal_cap,
            Some((9, 19, 0)),
            "staggered"
        );
        assert!(chaos.validate().is_ok());
        // the base itself is untouched — materialisation is pure
        assert_eq!(chaos.base.devices[1].cliff, None);
    }

    #[test]
    fn named_scenarios_validate_and_resolve_by_name() {
        for name in ["retry-storm", "flash-crowd", "thermal-wave", "charge-cycle"] {
            let chaos = ChaosScenario::by_name(name).expect("known name");
            assert!(chaos.validate().is_ok(), "{name} must validate");
        }
        assert!(ChaosScenario::by_name("nope").is_none());
    }

    #[test]
    fn generated_scenarios_are_deterministic_and_valid() {
        for seed in 0..24u64 {
            let a = ChaosScenario::generate(seed);
            let b = ChaosScenario::generate(seed);
            assert_eq!(a, b, "same seed, same scenario");
            assert!(a.validate().is_ok(), "seed {seed} must validate");
            assert!(!a.overlays.is_empty());
        }
        assert_ne!(
            ChaosScenario::generate(1),
            ChaosScenario::generate(2),
            "different seeds should differ"
        );
    }

    #[test]
    fn invalid_compositions_are_rejected() {
        let base = ChaosScenario::chaos_base(30, 10.0);
        let bad_mult = ChaosScenario::new("t", base.clone()).with(ChaosOverlay::FlashCrowd {
            at_s: 0,
            len_s: 5,
            multiplier: 0.0,
        });
        assert!(bad_mult.validate().is_err());
        let bad_device = ChaosScenario::new("t", base).with(ChaosOverlay::DeviceDeath {
            device: 99,
            at_s: 5,
        });
        assert!(bad_device.validate().is_err());
    }
}
