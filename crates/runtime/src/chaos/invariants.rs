//! The global invariant harness: everything that must hold of *any* chaos
//! run, however hostile the composition. `proptest_chaos.rs` fuzzes
//! generated scenarios through [`check_invariants`] the way
//! `proptest_fleet.rs` fuzzes the router, and the CI chaos smoke job gates
//! on it.
//!
//! The invariant families:
//!
//! 1. **No request silently lost.** Attempts partition into completed /
//!    late / rejected / dropped-dead / outstanding; jobs partition into
//!    succeeded / late-accepted / abandoned / pending. Both partitions
//!    must be exact, agree with the fleet report's per-device terminal
//!    outcomes, and agree with the independently-kept telemetry counters.
//! 2. **Battery monotone between charge events.** A device's state of
//!    charge never rises in a window whose profile has no active charger.
//! 3. **Aggregates consistent with per-device snapshots.** Fleet totals
//!    equal the sum of their device parts, window reports sum to device
//!    totals, and the merged fleet telemetry snapshot
//!    ([`crate::FleetReport::merged_device_telemetry`]) matches the
//!    per-device counters it merged.
//! 4. **Retries bounded by policy.** No job issues more than
//!    `max_attempts` attempts, and total retries respect the policy cap.

use super::driver::ChaosReport;
use super::scenario::ChaosScenario;

/// Allows for f64 accumulation noise when comparing charge levels.
const SOC_EPSILON: f64 = 1e-9;

/// Checks every global invariant of `report` against the scenario that
/// produced it. Returns all violations, not just the first — a chaos run
/// that breaks one conservation law usually breaks several, and the full
/// list is what makes the failure debuggable.
///
/// # Errors
///
/// Returns one human-readable line per violated invariant.
pub fn check_invariants(chaos: &ChaosScenario, report: &ChaosReport) -> Result<(), Vec<String>> {
    let mut violations = Vec::new();
    let c = &report.clients;
    let fleet = &report.fleet;
    let scenario = chaos.fleet_scenario();

    // ── 1. no request silently lost ──────────────────────────────────────
    let attempt_outcomes = c.attempt_completed
        + c.attempt_late
        + c.attempt_rejected
        + c.attempt_dropped_dead
        + c.attempt_outstanding;
    if attempt_outcomes != c.attempts {
        violations.push(format!(
            "attempt conservation: completed {} + late {} + rejected {} + dropped {} \
             + outstanding {} = {} != attempts {}",
            c.attempt_completed,
            c.attempt_late,
            c.attempt_rejected,
            c.attempt_dropped_dead,
            c.attempt_outstanding,
            attempt_outcomes,
            c.attempts
        ));
    }
    let job_outcomes = c.succeeded + c.succeeded_late + c.abandoned + c.pending_at_end;
    if job_outcomes != c.jobs {
        violations.push(format!(
            "job conservation: succeeded {} + late-accepted {} + abandoned {} + pending {} \
             = {} != jobs {}",
            c.succeeded, c.succeeded_late, c.abandoned, c.pending_at_end, job_outcomes, c.jobs
        ));
    }
    if c.attempts != c.jobs + c.retries {
        violations.push(format!(
            "attempts {} != jobs {} + retries {}",
            c.attempts, c.jobs, c.retries
        ));
    }
    // reconcile against the fleet's view: every attempt arrived at the
    // router; rejected attempts are exactly the unroutable ones; device
    // terminal outcomes match the attempt partition
    if fleet.arrivals != c.attempts {
        violations.push(format!(
            "router arrivals {} != client attempts {}",
            fleet.arrivals, c.attempts
        ));
    }
    if fleet.unroutable != c.attempt_rejected {
        violations.push(format!(
            "router unroutable {} != rejected attempts {}",
            fleet.unroutable, c.attempt_rejected
        ));
    }
    if fleet.completed() != c.attempt_completed + c.attempt_late {
        violations.push(format!(
            "fleet completions {} != on-time {} + late {} attempts",
            fleet.completed(),
            c.attempt_completed,
            c.attempt_late
        ));
    }
    if fleet.missed_deadline() != c.attempt_late {
        violations.push(format!(
            "fleet deadline misses {} != late attempts {}",
            fleet.missed_deadline(),
            c.attempt_late
        ));
    }
    let dropped_dead: u64 = fleet.devices.iter().map(|d| d.dropped_dead_battery).sum();
    if dropped_dead != c.attempt_dropped_dead {
        violations.push(format!(
            "fleet dead-battery drops {} != dropped attempts {}",
            dropped_dead, c.attempt_dropped_dead
        ));
    }
    let trace_end: u64 = fleet.devices.iter().map(|d| d.dropped_at_trace_end).sum();
    if trace_end != c.attempt_outstanding {
        violations.push(format!(
            "fleet trace-end drops {} != outstanding attempts {}",
            trace_end, c.attempt_outstanding
        ));
    }
    // reconcile against the independently-kept client telemetry counters
    if let Some(snapshot) = &report.client_telemetry {
        let expected: [(&str, u64); 10] = [
            ("client_jobs", c.jobs),
            ("client_suppressed", c.suppressed),
            ("client_attempts", c.attempts),
            ("client_retries", c.retries),
            ("client_jobs_succeeded", c.succeeded),
            ("client_jobs_abandoned", c.abandoned),
            ("client_jobs_pending_at_end", c.pending_at_end),
            ("client_attempt_late", c.attempt_late),
            ("client_attempt_rejected", c.attempt_rejected),
            ("client_attempt_dropped_dead", c.attempt_dropped_dead),
        ];
        for (name, value) in expected {
            if snapshot.metrics.counter(name) != Some(value) {
                violations.push(format!(
                    "telemetry counter {name} = {:?} disagrees with client report {value}",
                    snapshot.metrics.counter(name)
                ));
            }
        }
    }

    // ── 2. battery monotone between charge events ────────────────────────
    for (i, device) in fleet.devices.iter().enumerate() {
        let Some(profile) = scenario.devices.get(i) else {
            violations.push(format!("device {i} has no profile in the scenario"));
            continue;
        };
        for pair in device.windows.windows(2) {
            let (prev, next) = (&pair[0], &pair[1]);
            let rose = next.state_of_charge > prev.state_of_charge + SOC_EPSILON;
            if rose && profile.charge_w_at(next.t_s) <= 0.0 {
                violations.push(format!(
                    "{}: state of charge rose {:.6} -> {:.6} at t={} with no charger",
                    device.scenario, prev.state_of_charge, next.state_of_charge, next.t_s
                ));
            }
        }
    }

    // ── 3. aggregates consistent with per-device snapshots ───────────────
    for device in &fleet.devices {
        let window_completed: u64 = device.windows.iter().map(|w| w.completed).sum();
        if window_completed != device.completed {
            violations.push(format!(
                "{}: window completions {} != device total {}",
                device.scenario, window_completed, device.completed
            ));
        }
        let window_arrivals: u64 = device.windows.iter().map(|w| w.arrivals).sum();
        if window_arrivals != device.arrivals {
            violations.push(format!(
                "{}: window arrivals {} != device total {}",
                device.scenario, window_arrivals, device.arrivals
            ));
        }
    }
    let routed: u64 = fleet.devices.iter().map(|d| d.arrivals).sum();
    if routed + fleet.unroutable != fleet.arrivals {
        violations.push(format!(
            "routed {} + unroutable {} != arrivals {}",
            routed, fleet.unroutable, fleet.arrivals
        ));
    }
    if let Some(merged) = fleet.merged_device_telemetry() {
        let admitted: u64 = fleet
            .devices
            .iter()
            .filter_map(|d| d.telemetry.as_ref())
            .filter_map(|t| t.metrics.counter("requests_admitted"))
            .sum();
        if merged.metrics.counter("requests_admitted") != Some(admitted) {
            violations.push(format!(
                "merged telemetry requests_admitted {:?} != per-device sum {admitted}",
                merged.metrics.counter("requests_admitted")
            ));
        }
        let completed: u64 = fleet
            .devices
            .iter()
            .filter_map(|d| d.telemetry.as_ref())
            .filter_map(|t| t.metrics.counter("requests_completed"))
            .sum();
        if merged.metrics.counter("requests_completed") != Some(completed) {
            violations.push(format!(
                "merged telemetry requests_completed {:?} != per-device sum {completed}",
                merged.metrics.counter("requests_completed")
            ));
        }
        if completed != fleet.completed() {
            violations.push(format!(
                "telemetry requests_completed {} != report completions {}",
                completed,
                fleet.completed()
            ));
        }
        let hist_count = merged
            .metrics
            .histogram("latency_ms")
            .map(|h| h.count())
            .unwrap_or(0);
        let device_hist: u64 = fleet.devices.iter().map(|d| d.latency_hist.count()).sum();
        if hist_count != device_hist {
            violations.push(format!(
                "merged latency histogram count {hist_count} != per-device sum {device_hist}"
            ));
        }
    }

    // ── 4. retries bounded by policy ─────────────────────────────────────
    let policy = &chaos.clients;
    let max_attempts = policy.max_attempts as u64;
    if c.jobs > 0 && c.retries > c.jobs * (max_attempts - 1) {
        violations.push(format!(
            "retries {} exceed jobs {} x (max_attempts {} - 1)",
            c.retries, c.jobs, max_attempts
        ));
    }
    if let Some(snapshot) = &report.client_telemetry {
        if let Some(hist) = snapshot.metrics.histogram("client_attempts_per_job") {
            if hist.count() > 0 && hist.max() > max_attempts as f64 + SOC_EPSILON {
                violations.push(format!(
                    "a job issued {} attempts, above the policy cap {max_attempts}",
                    hist.max()
                ));
            }
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}
