//! The online governor policy: battery/DVFS telemetry in, level decisions
//! out.
//!
//! The paper's governor steps the V/F level down as the battery drains
//! ([`DvfsGovernor::mode_for_battery`]). Applied naively online, a state of
//! charge hovering around a threshold makes the device ping-pong between
//! adjacent levels, paying a pattern-set switch each time. The
//! [`RuntimeController`] therefore wraps the governor with two pieces of
//! hysteresis:
//!
//! * a **dwell window** — once switched, the policy holds the level for at
//!   least [`HysteresisConfig::min_dwell_ms`];
//! * a **state-of-charge margin** — a threshold crossing only counts once
//!   the battery is at least [`HysteresisConfig::soc_margin`] beyond it.
//!
//! A thermal cap (from the scenario) is hardware-mandated and clamps the
//! decision downward regardless of hysteresis.

use rt3_hardware::{DvfsGovernor, VfLevel};

/// Hysteresis parameters of the online policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HysteresisConfig {
    /// Minimum time between two policy-initiated switches, in milliseconds.
    pub min_dwell_ms: f64,
    /// State-of-charge margin (fraction of capacity) a threshold must be
    /// crossed by before the policy follows it.
    pub soc_margin: f64,
}

impl Default for HysteresisConfig {
    fn default() -> Self {
        Self {
            min_dwell_ms: 2_000.0,
            soc_margin: 0.01,
        }
    }
}

impl HysteresisConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.min_dwell_ms >= 0.0 && self.min_dwell_ms.is_finite()) {
            return Err("min_dwell_ms must be non-negative and finite".into());
        }
        if !(0.0..0.5).contains(&self.soc_margin) {
            return Err("soc_margin must be in [0, 0.5)".into());
        }
        Ok(())
    }
}

/// One telemetry sample fed to the controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Telemetry {
    /// Simulated time of the sample in milliseconds.
    pub now_ms: f64,
    /// Battery state of charge in `[0, 1]`.
    pub state_of_charge: f64,
    /// Hardware-mandated maximum level position, if a thermal governor is
    /// active (`0` = lowest frequency).
    pub thermal_cap: Option<usize>,
}

/// Outcome of one controller decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelDecision {
    /// Chosen governor level position (index into [`DvfsGovernor::levels`]).
    pub level_pos: usize,
    /// Whether this decision changed the level (and therefore requires a
    /// pattern-set switch).
    pub switched: bool,
}

/// Battery-aware level selection with hysteresis.
#[derive(Debug, Clone)]
pub struct RuntimeController {
    governor: DvfsGovernor,
    hysteresis: HysteresisConfig,
    current: Option<usize>,
    last_switch_ms: f64,
    switches: u64,
}

impl RuntimeController {
    /// Creates a controller over `governor`.
    ///
    /// # Panics
    ///
    /// Panics if the hysteresis configuration is invalid.
    pub fn new(governor: DvfsGovernor, hysteresis: HysteresisConfig) -> Self {
        hysteresis
            .validate()
            .expect("invalid hysteresis configuration");
        Self {
            governor,
            hysteresis,
            current: None,
            last_switch_ms: f64::NEG_INFINITY,
            switches: 0,
        }
    }

    /// The wrapped governor.
    pub fn governor(&self) -> &DvfsGovernor {
        &self.governor
    }

    /// The currently active level position, if any decision has been made.
    pub fn current_level(&self) -> Option<usize> {
        self.current
    }

    /// The V/F level of the current decision.
    pub fn current_vf_level(&self) -> Option<VfLevel> {
        self.current.map(|p| self.governor.levels()[p])
    }

    /// Number of level switches performed so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Milliseconds since the last switch — the dwell the hysteresis
    /// compares against. Infinite before the first decision.
    pub fn ms_since_last_switch(&self, now_ms: f64) -> f64 {
        now_ms - self.last_switch_ms
    }

    /// Raw governor target for a state of charge, without hysteresis.
    pub fn raw_target(&self, state_of_charge: f64) -> usize {
        self.governor
            .level_position(self.governor.mode_for_battery(state_of_charge))
    }

    /// Decides the level for one telemetry sample.
    ///
    /// The first decision always switches (there is no previous level). A
    /// thermal cap clamps the outcome downward immediately — thermal safety
    /// outranks hysteresis — but policy moves (battery-driven) honour both
    /// the dwell window and the state-of-charge margin.
    pub fn decide(&mut self, telemetry: Telemetry) -> LevelDecision {
        let soc = telemetry.state_of_charge.clamp(0.0, 1.0);
        let raw = self.raw_target(soc);
        let mut target = match self.current {
            None => raw,
            Some(current) if raw == current => current,
            Some(current) => {
                let dwell_ok =
                    telemetry.now_ms - self.last_switch_ms >= self.hysteresis.min_dwell_ms;
                // the crossing is confirmed only if the governor still picks
                // the new level when the state of charge is pushed back
                // towards the old one by the margin
                let margin = self.hysteresis.soc_margin;
                let probe = if raw < current {
                    soc + margin
                } else {
                    soc - margin
                };
                let margin_ok = self.raw_target(probe.clamp(0.0, 1.0)) == raw;
                if dwell_ok && margin_ok {
                    raw
                } else {
                    current
                }
            }
        };
        if let Some(cap) = telemetry.thermal_cap {
            target = target.min(cap);
        }
        let switched = self.current != Some(target);
        if switched {
            self.current = Some(target);
            self.last_switch_ms = telemetry.now_ms;
            self.switches += 1;
        }
        LevelDecision {
            level_pos: target,
            switched,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(min_dwell_ms: f64, soc_margin: f64) -> RuntimeController {
        RuntimeController::new(
            DvfsGovernor::paper_default(),
            HysteresisConfig {
                min_dwell_ms,
                soc_margin,
            },
        )
    }

    fn sample(now_ms: f64, soc: f64) -> Telemetry {
        Telemetry {
            now_ms,
            state_of_charge: soc,
            thermal_cap: None,
        }
    }

    #[test]
    fn follows_the_governor_as_the_battery_drains() {
        let mut c = controller(0.0, 0.0);
        assert_eq!(c.decide(sample(0.0, 0.9)).level_pos, 2);
        assert_eq!(c.decide(sample(1.0, 0.4)).level_pos, 1);
        let d = c.decide(sample(2.0, 0.1));
        assert_eq!(d.level_pos, 0);
        assert!(d.switched);
        assert_eq!(c.switches(), 3);
    }

    #[test]
    fn dwell_window_suppresses_rapid_switching() {
        let mut c = controller(1_000.0, 0.0);
        assert!(c.decide(sample(0.0, 0.9)).switched);
        // crossing right after the first switch is held back
        let held = c.decide(sample(100.0, 0.45));
        assert_eq!(held.level_pos, 2);
        assert!(!held.switched);
        // once the dwell window has passed, the crossing goes through
        let moved = c.decide(sample(1_200.0, 0.45));
        assert_eq!(moved.level_pos, 1);
        assert!(moved.switched);
    }

    #[test]
    fn soc_margin_debounces_threshold_hover() {
        let mut c = controller(0.0, 0.05);
        assert!(c.decide(sample(0.0, 0.6)).switched);
        // 0.49 is within the 0.05 margin of the 0.5 threshold: hold
        let d = c.decide(sample(1.0, 0.49));
        assert!(!d.switched);
        assert_eq!(d.level_pos, 2);
        // 0.44 is beyond the margin: switch
        let d = c.decide(sample(2.0, 0.44));
        assert!(d.switched);
        assert_eq!(d.level_pos, 1);
        // hovering back up to 0.52 (within margin) does not bounce back
        let d = c.decide(sample(3.0, 0.52));
        assert!(!d.switched);
        assert_eq!(d.level_pos, 1);
    }

    #[test]
    fn thermal_cap_clamps_immediately_and_releases() {
        let mut c = controller(10_000.0, 0.0);
        assert_eq!(c.decide(sample(0.0, 0.9)).level_pos, 2);
        let capped = c.decide(Telemetry {
            now_ms: 1.0,
            state_of_charge: 0.9,
            thermal_cap: Some(0),
        });
        assert_eq!(capped.level_pos, 0, "thermal cap outranks hysteresis");
        assert!(capped.switched);
        let released = c.decide(sample(20_000.0, 0.9));
        assert_eq!(released.level_pos, 2);
    }

    #[test]
    fn charging_back_up_recovers_higher_levels() {
        let mut c = controller(0.0, 0.02);
        assert_eq!(c.decide(sample(0.0, 0.15)).level_pos, 0);
        assert_eq!(c.decide(sample(1.0, 0.30)).level_pos, 1);
        assert_eq!(c.decide(sample(2.0, 0.80)).level_pos, 2);
    }

    #[test]
    fn exact_threshold_soc_is_inclusive_on_the_lower_level() {
        // paper_default thresholds sit at 0.5 (normal) and 0.2 (saving);
        // mode_for_battery treats them inclusively, so a state of charge of
        // exactly 0.5 is already Normal, not Fast
        let c = controller(0.0, 0.0);
        assert_eq!(c.raw_target(0.5 + f64::EPSILON), 2);
        assert_eq!(c.raw_target(0.5), 1);
        assert_eq!(c.raw_target(0.2 + f64::EPSILON), 1);
        assert_eq!(c.raw_target(0.2), 0);
        // with no margin, a decision at exactly the threshold steps down
        let mut c = controller(0.0, 0.0);
        assert_eq!(c.decide(sample(0.0, 0.9)).level_pos, 2);
        let d = c.decide(sample(1.0, 0.5));
        assert_eq!(d.level_pos, 1, "exact threshold crossing takes effect");
        assert!(d.switched);
    }

    #[test]
    fn margin_confirms_a_crossing_exactly_at_soc_plus_margin() {
        // the crossing is confirmed when the governor still picks the new
        // level with the state of charge pushed back by the margin: at
        // soc + margin == threshold the probe is *at* the threshold, which
        // is inclusive, so the switch goes through — one epsilon above holds
        let mut c = controller(0.0, 0.05);
        assert_eq!(c.decide(sample(0.0, 0.9)).level_pos, 2);
        let held = c.decide(sample(1.0, 0.45 + 1e-9));
        assert_eq!(held.level_pos, 2, "probe above the threshold holds");
        assert!(!held.switched);
        let moved = c.decide(sample(2.0, 0.45));
        assert_eq!(moved.level_pos, 1, "probe at the threshold confirms");
        assert!(moved.switched);
    }

    #[test]
    fn dwell_expiring_on_the_same_tick_as_a_thermal_clamp() {
        let mut c = controller(1_000.0, 0.0);
        assert_eq!(c.decide(sample(0.0, 0.9)).level_pos, 2);
        // the dwell window ends exactly now (1000 - 0 >= 1000) while a
        // thermal cap engages on the same tick: the battery move to l1 is
        // permitted and the cap clamps it further down to l0
        let d = c.decide(Telemetry {
            now_ms: 1_000.0,
            state_of_charge: 0.45,
            thermal_cap: Some(0),
        });
        assert_eq!(d.level_pos, 0);
        assert!(d.switched);
        // the clamp restarted the dwell window: releasing the cap half a
        // window later holds l0 even though the battery wants l1
        let held = c.decide(sample(1_500.0, 0.45));
        assert_eq!(held.level_pos, 0, "dwell suppresses the post-cap rebound");
        assert!(!held.switched);
        // at exact dwell expiry the suppressed move finally goes through
        let released = c.decide(sample(2_000.0, 0.45));
        assert_eq!(released.level_pos, 1);
        assert!(released.switched);
    }

    #[test]
    fn thermal_cap_clamps_the_very_first_decision() {
        let mut c = controller(10_000.0, 0.05);
        let d = c.decide(Telemetry {
            now_ms: 0.0,
            state_of_charge: 1.0,
            thermal_cap: Some(1),
        });
        assert_eq!(d.level_pos, 1, "first activation honours the cap");
        assert!(d.switched);
        assert_eq!(c.switches(), 1);
    }
}
