//! The analytic cost model: predictor latency plus a *fixed* batch
//! amortisation factor α — the pre-refactor `ServiceModel` math, preserved
//! bit-for-bit so default-configured runs replay the golden scenarios
//! unchanged (`tests/proptest_cost.rs` pins the exact expression).

use super::{CostConfig, CostModel, LatencyModel};

/// Fixed-α cost model (the default): a micro-batch of `b` requests costs
/// `base · (α + (1 − α) · b)` at every V/F level.
#[derive(Debug, Clone)]
pub struct Analytic {
    latency: LatencyModel,
    config: CostConfig,
}

impl Analytic {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(latency: LatencyModel, config: CostConfig) -> Self {
        config.validate().expect("invalid cost configuration");
        Self { latency, config }
    }

    /// The fixed amortisation factor.
    pub fn batch_alpha(&self) -> f64 {
        self.config.batch_alpha
    }
}

impl CostModel for Analytic {
    fn label(&self) -> &'static str {
        "analytic"
    }

    fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    fn service_from_base_ms(&self, _level_pos: usize, base_latency_ms: f64, batch: usize) -> f64 {
        assert!(batch > 0, "batch must be non-empty");
        let alpha = self.config.batch_alpha;
        base_latency_ms * (alpha + (1.0 - alpha) * batch as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt3_hardware::{PerformancePredictor, VfLevel};
    use rt3_transformer::TransformerConfig;

    fn model(alpha: f64) -> Analytic {
        Analytic::new(
            LatencyModel {
                predictor: PerformancePredictor::cortex_a7(),
                workload_config: TransformerConfig::paper_transformer(256),
                seq_len: 24,
            },
            CostConfig { batch_alpha: alpha },
        )
    }

    #[test]
    fn batch_of_one_costs_exactly_the_base_latency() {
        let cost = model(0.45);
        let level = VfLevel::odroid_level(6);
        let base = cost.base_latency_ms(0.6, &level);
        assert_eq!(cost.service_from_base_ms(3, base, 1), base);
        assert_eq!(cost.service_ms(3, 0.6, &level, 1), base);
    }

    #[test]
    fn amortisation_is_the_documented_affine_curve() {
        let cost = model(0.45);
        let expected = 100.0 * (0.45 + 0.55 * 4.0);
        assert_eq!(cost.service_from_base_ms(0, 100.0, 4), expected);
        assert!((cost.batch_alpha() - 0.45).abs() < 1e-15);
        assert_eq!(cost.label(), "analytic");
    }

    #[test]
    #[should_panic(expected = "batch must be non-empty")]
    fn zero_batch_panics() {
        let _ = model(0.3).service_from_base_ms(0, 100.0, 0);
    }

    #[test]
    #[should_panic(expected = "invalid cost configuration")]
    fn invalid_alpha_panics_at_construction() {
        let _ = model(1.0);
    }
}
