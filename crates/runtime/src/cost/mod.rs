//! The rt3-cost layer: every latency/energy *prediction* the runtime makes
//! — scheduler deadline accounting, engine admission estimates, fleet
//! routing scores — flows through one [`CostModel`] abstraction instead of
//! being re-derived (and re-configured) per subsystem.
//!
//! Two implementations ship:
//!
//! * [`Analytic`] — the paper's [`rt3_hardware::PerformancePredictor`]
//!   single-request latency plus the fixed batch-amortisation factor α
//!   (`service = base · (α + (1 − α) · batch)`), reproducing the
//!   pre-refactor `ServiceModel` math bit-for-bit. This is the default, so
//!   default-configured runs replay the PR 2 golden scenarios unchanged.
//! * [`Calibrated`] — the same single-request predictor, but the
//!   amortisation curve is *measured*: [`calibrate`] times the real
//!   sparse-inference worker pool ([`crate::pool`]) at every micro-batch
//!   size and V/F level and fits a per-level piecewise-linear
//!   [`AmortisationCurve`], closing the loop between the simulated batching
//!   model and what the compiled sparse kernels actually do.
//!
//! The shared [`CostConfig`] is the single source of truth for the
//! batch-amortisation knob that `EngineConfig` and the fleet config used to
//! duplicate (field, default *and* validation message).

mod analytic;
mod calibrated;

pub use analytic::Analytic;
pub use calibrated::{
    calibrate, AmortisationCurve, Calibrated, CalibrationOptions, CalibrationPoint,
    CalibrationReport, LevelCalibration, SwitchCalibration,
};

use rt3_hardware::{PerformancePredictor, VfLevel};
use rt3_sparse::SparseFormat;
use rt3_transformer::TransformerConfig;

/// Shared cost-model configuration — the single home of the
/// batch-amortisation α that was previously copy-pasted (field and
/// validation) between the engine and fleet configs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConfig {
    /// Fraction of a single-request inference that is amortised across a
    /// micro-batch (weight streaming); the rest scales per request. In
    /// `[0, 1)`; a batch of 1 always costs exactly the predicted latency.
    pub batch_alpha: f64,
}

impl Default for CostConfig {
    fn default() -> Self {
        Self { batch_alpha: 0.45 }
    }
}

impl CostConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.batch_alpha) {
            return Err("batch_alpha must be in [0, 1)".into());
        }
        Ok(())
    }
}

/// Single-request latency model shared by every [`CostModel`]
/// implementation: the paper's predictor evaluated on the serving workload
/// shape.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Latency predictor calibrated for the target core/cluster.
    pub predictor: PerformancePredictor,
    /// Model shape used for latency accounting (may be the full-size paper
    /// shape even when the banked weights are smaller).
    pub workload_config: TransformerConfig,
    /// Sequence length of one request.
    pub seq_len: usize,
}

impl LatencyModel {
    /// Predicted latency of a single request at `sparsity` on `level`.
    pub fn base_latency_ms(&self, sparsity: f64, level: &VfLevel) -> f64 {
        let workload = rt3_hardware::ModelWorkload::from_config(
            &self.workload_config,
            sparsity,
            self.seq_len,
            SparseFormat::BlockPruned,
        );
        self.predictor.latency_ms(&workload, level)
    }
}

/// One prediction surface for the whole runtime: single-request latency and
/// micro-batch service time. The scheduler's deadline accounting, the
/// engine's admission estimate, and the router's predicted-latency score
/// all call the *same* object, so the three layers can never drift apart.
pub trait CostModel: Send + Sync {
    /// Short label for reports (`"analytic"` / `"calibrated"`).
    fn label(&self) -> &'static str;

    /// The shared single-request latency model.
    fn latency_model(&self) -> &LatencyModel;

    /// Predicted latency of a single request at `sparsity` on `level`.
    fn base_latency_ms(&self, sparsity: f64, level: &VfLevel) -> f64 {
        self.latency_model().base_latency_ms(sparsity, level)
    }

    /// Service time of a micro-batch of `batch` requests at governor level
    /// position `level_pos`, given a precomputed single-request latency
    /// (callers cache [`CostModel::base_latency_ms`] between level switches
    /// instead of rebuilding the workload per batch).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    fn service_from_base_ms(&self, level_pos: usize, base_latency_ms: f64, batch: usize) -> f64;

    /// Service time of a micro-batch of `batch` requests at `sparsity` on
    /// `level` (position `level_pos`).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    fn service_ms(&self, level_pos: usize, sparsity: f64, level: &VfLevel, batch: usize) -> f64 {
        self.service_from_base_ms(level_pos, self.base_latency_ms(sparsity, level), batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_config_validates_alpha_range() {
        assert!(CostConfig::default().validate().is_ok());
        assert!(CostConfig { batch_alpha: 0.0 }.validate().is_ok());
        let err = CostConfig { batch_alpha: 1.0 }.validate().unwrap_err();
        assert_eq!(err, "batch_alpha must be in [0, 1)");
        assert!(CostConfig { batch_alpha: -0.1 }.validate().is_err());
        assert!(CostConfig {
            batch_alpha: f64::NAN
        }
        .validate()
        .is_err());
    }

    #[test]
    fn latency_model_matches_the_predictor() {
        let latency = LatencyModel {
            predictor: PerformancePredictor::cortex_a7(),
            workload_config: TransformerConfig::paper_transformer(256),
            seq_len: 24,
        };
        let level = VfLevel::odroid_level(4);
        let workload = rt3_hardware::ModelWorkload::from_config(
            &latency.workload_config,
            0.5,
            24,
            SparseFormat::BlockPruned,
        );
        assert_eq!(
            latency.base_latency_ms(0.5, &level),
            latency.predictor.latency_ms(&workload, &level),
        );
    }
}
