//! The measured cost model: the fixed batch-amortisation α is replaced by a
//! per-V/F-level piecewise-linear curve timed on the *real* sparse-inference
//! worker pool. Wall-clock latency of the build machine obviously differs
//! from the simulated Cortex-A7, but the amortisation *ratio* — how much a
//! micro-batch of `b` costs relative to a batch of one on the very kernels
//! the pool executes — is dimensionless and transfers: the calibrated model
//! applies the measured ratio to the predictor's single-request latency.

use super::{CostModel, LatencyModel};
use crate::bank::ModelBank;
use crate::pool;
use rt3_transformer::Model;

/// Piecewise-linear batch-amortisation curve: `multiplier(b)` is the service
/// time of a micro-batch of `b` requests relative to a batch of one.
///
/// Invariants enforced at construction: `multiplier(1) == 1.0` exactly (a
/// batch of one always costs the predicted latency) and the curve is
/// monotone non-decreasing in the batch size (a bigger batch can never be
/// predicted cheaper than a smaller one, whatever timing noise said).
#[derive(Debug, Clone, PartialEq)]
pub struct AmortisationCurve {
    /// `multipliers[b - 1]` is the multiplier for batch size `b`.
    multipliers: Vec<f64>,
}

impl AmortisationCurve {
    /// Builds a curve from raw measured multipliers (`raw[i]` for batch size
    /// `i + 1`). The first point is forced to exactly 1.0 and later points
    /// are clamped monotone non-decreasing, which is how one noisy sample
    /// is kept from inverting the curve.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is empty or contains a non-finite value.
    pub fn from_raw(raw: &[f64]) -> Self {
        assert!(!raw.is_empty(), "a curve needs at least one point");
        assert!(
            raw.iter().all(|m| m.is_finite()),
            "curve multipliers must be finite"
        );
        let mut multipliers = Vec::with_capacity(raw.len());
        multipliers.push(1.0);
        for &m in &raw[1..] {
            let floor = *multipliers.last().expect("non-empty");
            multipliers.push(m.max(floor));
        }
        Self { multipliers }
    }

    /// The fixed-α affine curve `α + (1 − α) · b` sampled at batch sizes
    /// `1..=max_batch` — the analytic baseline expressed as a curve, used
    /// by the calibration report for side-by-side comparison.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero or `alpha` is outside `[0, 1)`.
    pub fn fixed_alpha(alpha: f64, max_batch: usize) -> Self {
        assert!(max_batch > 0, "a curve needs at least one point");
        assert!((0.0..1.0).contains(&alpha), "alpha must be in [0, 1)");
        let raw: Vec<f64> = (1..=max_batch)
            .map(|b| alpha + (1.0 - alpha) * b as f64)
            .collect();
        Self::from_raw(&raw)
    }

    /// Number of measured batch sizes (`1..=len`).
    pub fn len(&self) -> usize {
        self.multipliers.len()
    }

    /// Whether the curve has no points (never true for a constructed curve).
    pub fn is_empty(&self) -> bool {
        self.multipliers.is_empty()
    }

    /// The stored multipliers, indexed by `batch − 1`.
    pub fn multipliers(&self) -> &[f64] {
        &self.multipliers
    }

    /// The amortisation multiplier for a batch of `batch` requests: a direct
    /// lookup inside the measured range, linear extrapolation along the last
    /// measured segment beyond it (with a single measured point, each extra
    /// request costs one more full base latency, matching α = 0).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn multiplier(&self, batch: usize) -> f64 {
        assert!(batch > 0, "batch must be non-empty");
        let n = self.multipliers.len();
        if batch <= n {
            return self.multipliers[batch - 1];
        }
        let last = self.multipliers[n - 1];
        let slope = if n >= 2 {
            last - self.multipliers[n - 2]
        } else {
            last
        };
        last + slope * (batch - n) as f64
    }
}

/// Parameters of the measurement pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalibrationOptions {
    /// Largest micro-batch size to measure (every size `1..=max_batch` is
    /// timed; the scheduler's `max_batch` is the natural choice).
    pub max_batch: usize,
    /// Micro-batches per timed pool run — the wall clock is divided by this,
    /// amortising thread-spawn overhead out of the per-batch estimate.
    pub repetitions: usize,
    /// Timed runs per `(level, batch)` point; the best (minimum) is kept —
    /// wall-clock noise is strictly additive, so the fastest sample is the
    /// least-polluted estimate.
    pub samples: usize,
    /// Worker threads during timing (1 measures a single worker's service
    /// time, which is what the scheduler charges per micro-batch).
    pub workers: usize,
}

impl Default for CalibrationOptions {
    fn default() -> Self {
        Self {
            max_batch: 4,
            repetitions: 8,
            samples: 3,
            workers: 1,
        }
    }
}

impl CalibrationOptions {
    /// A cheap pass for CI and tests: fewer repetitions per sample. The
    /// sample count stays at 3 — the best-of-samples estimator needs more
    /// than one draw to shed scheduling noise, and a noisy batch-of-one
    /// anchor would skew the whole curve.
    pub fn quick() -> Self {
        Self {
            repetitions: 4,
            ..Self::default()
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_batch == 0 {
            return Err("max_batch must be positive".into());
        }
        if self.repetitions == 0 {
            return Err("repetitions must be positive".into());
        }
        if self.samples == 0 {
            return Err("samples must be positive".into());
        }
        if self.workers == 0 {
            return Err("at least one worker is required".into());
        }
        Ok(())
    }
}

/// One measured `(batch size, wall clock)` point of a level's curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationPoint {
    /// Micro-batch size.
    pub batch: usize,
    /// Best-of-samples wall-clock milliseconds of one micro-batch of this
    /// size.
    pub measured_ms: f64,
    /// Raw measured multiplier relative to the batch-of-one point (before
    /// the monotone clamp).
    pub raw_multiplier: f64,
}

/// The measured curve of one governor level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelCalibration {
    /// Governor level position (0 = lowest frequency).
    pub level_pos: usize,
    /// Achieved sparsity of the banked variant that was timed.
    pub sparsity: f64,
    /// Raw measurements, one per batch size `1..=max_batch`.
    pub points: Vec<CalibrationPoint>,
    /// The clamped curve the [`Calibrated`] model serves from.
    pub curve: AmortisationCurve,
}

/// Measured cost of one V/F switch: with the `from` variant resident, the
/// wall-clock cost of materialising the `to` variant from scratch —
/// mask combination, block scoring through the detected SIMD backend and
/// plan compilation ([`ModelBank::rebuild_cold`]), which is exactly what a
/// governor transition to a non-resident level pays before it can serve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchCalibration {
    /// Source governor level position (resident while the switch is timed).
    pub from_level: usize,
    /// Destination governor level position (the one being built).
    pub to_level: usize,
    /// Best-of-samples wall-clock milliseconds of the switch.
    pub switch_cost_ms: f64,
}

/// Outcome of a [`calibrate`] pass: per-level measurements plus the curves.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// One entry per governor level position.
    pub levels: Vec<LevelCalibration>,
    /// Measured V/F switch costs, one entry per ordered level pair
    /// (`from != to`).
    pub switches: Vec<SwitchCalibration>,
    /// The options the pass ran with.
    pub options: CalibrationOptions,
}

impl CalibrationReport {
    /// The measured switch cost for an ordered level pair, if that pair was
    /// timed.
    pub fn switch_cost_ms(&self, from_level: usize, to_level: usize) -> Option<f64> {
        self.switches
            .iter()
            .find(|s| s.from_level == from_level && s.to_level == to_level)
            .map(|s| s.switch_cost_ms)
    }

    /// Mean absolute deviation between the *raw* measured multipliers
    /// (before the monotone clamp) and the fixed-α curve over every
    /// `(level, batch)` point — how far reality sits from the assumed
    /// amortisation.
    pub fn mean_abs_deviation_from_alpha(&self, alpha: f64) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for level in &self.levels {
            if level.points.is_empty() {
                continue;
            }
            let max_batch = level.points.iter().map(|p| p.batch).max().expect("points");
            let fixed = AmortisationCurve::fixed_alpha(alpha, max_batch);
            for point in &level.points {
                total += (point.raw_multiplier - fixed.multiplier(point.batch)).abs();
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

/// Measured cost model: predictor single-request latency, per-level
/// measured amortisation curves.
#[derive(Debug, Clone)]
pub struct Calibrated {
    latency: LatencyModel,
    curves: Vec<AmortisationCurve>,
}

impl Calibrated {
    /// Builds the model from per-level curves (index = governor level
    /// position; a level beyond the last curve clamps to it).
    ///
    /// # Panics
    ///
    /// Panics if `curves` is empty.
    pub fn new(latency: LatencyModel, curves: Vec<AmortisationCurve>) -> Self {
        assert!(!curves.is_empty(), "at least one level curve is required");
        Self { latency, curves }
    }

    /// The curve serving a governor level position (clamped to the last
    /// curve for out-of-range positions).
    pub fn curve(&self, level_pos: usize) -> &AmortisationCurve {
        &self.curves[level_pos.min(self.curves.len() - 1)]
    }

    /// Number of per-level curves.
    pub fn levels(&self) -> usize {
        self.curves.len()
    }
}

impl CostModel for Calibrated {
    fn label(&self) -> &'static str {
        "calibrated"
    }

    fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    fn service_from_base_ms(&self, level_pos: usize, base_latency_ms: f64, batch: usize) -> f64 {
        base_latency_ms * self.curve(level_pos).multiplier(batch)
    }
}

/// Best (minimum) of a non-empty sample set — the standard robust estimator
/// for wall-clock timing, where noise (scheduling, cache pollution) is
/// strictly additive.
fn best_sample(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// The calibration pass: times the real worker pool on every banked variant
/// at every micro-batch size `1..=max_batch` and fits one monotone
/// piecewise-linear [`AmortisationCurve`] per governor level. Variants are
/// rebuilt cold (bypassing the bank's LRU cache) so the pass leaves the
/// bank's residency statistics untouched.
///
/// # Panics
///
/// Panics if the options are invalid.
pub fn calibrate<M: Model>(
    latency: LatencyModel,
    bank: &ModelBank<'_, M>,
    options: CalibrationOptions,
) -> (Calibrated, CalibrationReport) {
    options.validate().expect("invalid calibration options");
    let mut levels = Vec::with_capacity(bank.levels());
    let mut curves = Vec::with_capacity(bank.levels());
    for level_pos in 0..bank.levels() {
        let variant = bank.rebuild_cold(level_pos);
        // untimed warm-up: fault the weights in and warm the caches so the
        // first timed point (the batch-of-one anchor) is not the cold run
        let _ = pool::run_batches(&variant, &[1, options.max_batch], options.workers);
        let mut points = Vec::with_capacity(options.max_batch);
        let mut raw = Vec::with_capacity(options.max_batch);
        let mut single_ms = 0.0;
        for batch in 1..=options.max_batch {
            let batches = vec![batch; options.repetitions];
            let samples: Vec<f64> = (0..options.samples)
                .map(|_| {
                    let (_, wall_ms) = pool::time_batches(&variant, &batches, options.workers);
                    wall_ms / options.repetitions as f64
                })
                .collect();
            let measured_ms = best_sample(&samples);
            if batch == 1 {
                single_ms = measured_ms;
            }
            // a clock too coarse to resolve the batch-of-one anchor would
            // blow every later ratio up to nonsense; fall back to the
            // conservative linear curve (each extra request costs one full
            // base latency, i.e. α = 0) instead of dividing by ~zero
            let raw_multiplier = if single_ms > 0.0 {
                measured_ms / single_ms
            } else {
                batch as f64
            };
            raw.push(raw_multiplier);
            points.push(CalibrationPoint {
                batch,
                measured_ms,
                raw_multiplier,
            });
        }
        let curve = AmortisationCurve::from_raw(&raw);
        curves.push(curve.clone());
        levels.push(LevelCalibration {
            level_pos,
            sparsity: variant.sparsity,
            points,
            curve,
        });
    }
    let switches = calibrate_switches(bank, &options);
    (
        Calibrated::new(latency, curves),
        CalibrationReport {
            levels,
            switches,
            options,
        },
    )
}

/// Times every ordered V/F level pair: the `from` variant is built and
/// warmed (one batch-of-one inference) so the machine state resembles
/// steady serving at that level, then the cold rebuild of each `to` variant
/// is timed best-of-samples. Faster lowering kernels (the SIMD-backed block
/// scoring) show up directly in these numbers, which is why the pass
/// re-measures them instead of reusing the analytic
/// [`ModelBank::switch_cost`].
fn calibrate_switches<M: Model>(
    bank: &ModelBank<'_, M>,
    options: &CalibrationOptions,
) -> Vec<SwitchCalibration> {
    let mut switches = Vec::with_capacity(bank.levels().saturating_sub(1) * bank.levels());
    for from_level in 0..bank.levels() {
        let resident = bank.rebuild_cold(from_level);
        let _ = pool::run_batches(&resident, &[1], options.workers);
        for to_level in 0..bank.levels() {
            if to_level == from_level {
                continue;
            }
            let samples: Vec<f64> = (0..options.samples)
                .map(|_| {
                    let start = std::time::Instant::now();
                    let built = bank.rebuild_cold(to_level);
                    let elapsed_ms = start.elapsed().as_secs_f64() * 1_000.0;
                    assert!(built.stored_values() > 0, "switch built an empty variant");
                    elapsed_ms
                })
                .collect();
            switches.push(SwitchCalibration {
                from_level,
                to_level,
                switch_cost_ms: best_sample(&samples),
            });
        }
    }
    switches
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt3_hardware::{PerformancePredictor, VfLevel};
    use rt3_transformer::TransformerConfig;

    fn latency() -> LatencyModel {
        LatencyModel {
            predictor: PerformancePredictor::cortex_a7(),
            workload_config: TransformerConfig::paper_transformer(256),
            seq_len: 24,
        }
    }

    #[test]
    fn curve_clamps_noise_monotone_and_pins_batch_one() {
        let curve = AmortisationCurve::from_raw(&[1.3, 1.8, 1.6, 2.4]);
        assert_eq!(curve.multiplier(1), 1.0, "batch of one is exact");
        assert_eq!(curve.multiplier(2), 1.8);
        assert_eq!(curve.multiplier(3), 1.8, "noisy dip is clamped");
        assert_eq!(curve.multiplier(4), 2.4);
    }

    #[test]
    fn curve_extrapolates_along_the_last_segment() {
        let curve = AmortisationCurve::from_raw(&[1.0, 1.5, 2.0]);
        assert!((curve.multiplier(4) - 2.5).abs() < 1e-12);
        assert!((curve.multiplier(6) - 3.5).abs() < 1e-12);
        let single = AmortisationCurve::from_raw(&[1.0]);
        assert!((single.multiplier(3) - 3.0).abs() < 1e-12, "α = 0 fallback");
    }

    #[test]
    fn fixed_alpha_curve_matches_the_analytic_expression() {
        let alpha = 0.45;
        let curve = AmortisationCurve::fixed_alpha(alpha, 6);
        for b in 1..=6usize {
            let expected = alpha + (1.0 - alpha) * b as f64;
            assert!((curve.multiplier(b) - expected).abs() < 1e-12);
        }
        // extrapolation continues the same affine curve
        assert!((curve.multiplier(9) - (alpha + (1.0 - alpha) * 9.0)).abs() < 1e-9);
    }

    #[test]
    fn calibrated_model_applies_the_per_level_curve() {
        let curves = vec![
            AmortisationCurve::from_raw(&[1.0, 1.2]),
            AmortisationCurve::from_raw(&[1.0, 1.9]),
        ];
        let cost = Calibrated::new(latency(), curves);
        assert_eq!(cost.label(), "calibrated");
        assert_eq!(cost.levels(), 2);
        assert!((cost.service_from_base_ms(0, 100.0, 2) - 120.0).abs() < 1e-9);
        assert!((cost.service_from_base_ms(1, 100.0, 2) - 190.0).abs() < 1e-9);
        // out-of-range level clamps to the last curve
        assert!((cost.service_from_base_ms(9, 100.0, 2) - 190.0).abs() < 1e-9);
        // batch of one is exact at every level
        let level = VfLevel::odroid_level(3);
        let base = cost.base_latency_ms(0.5, &level);
        assert_eq!(cost.service_ms(0, 0.5, &level, 1), base);
    }

    #[test]
    fn report_measures_deviation_of_the_raw_measurements() {
        let point = |batch: usize, raw_multiplier: f64| CalibrationPoint {
            batch,
            measured_ms: 0.1 * raw_multiplier,
            raw_multiplier,
        };
        let raw = [1.0, 2.0, 1.4]; // noisy dip at batch 3
        let report = CalibrationReport {
            levels: vec![LevelCalibration {
                level_pos: 0,
                sparsity: 0.5,
                points: raw
                    .iter()
                    .enumerate()
                    .map(|(i, &m)| point(i + 1, m))
                    .collect(),
                curve: AmortisationCurve::from_raw(&raw), // clamps to [1, 2, 2]
            }],
            switches: Vec::new(),
            options: CalibrationOptions::quick(),
        };
        // fixed α = 0.5 gives multipliers [1.0, 1.5, 2.0]; the deviation is
        // computed against the RAW measurements (|1-1| + |2-1.5| + |1.4-2|)
        // — not the clamped curve, which would hide the batch-3 dip
        let expected = (0.0 + 0.5 + 0.6) / 3.0;
        assert!((report.mean_abs_deviation_from_alpha(0.5) - expected).abs() < 1e-12);
        // no points, no deviation
        let empty = CalibrationReport {
            levels: Vec::new(),
            switches: Vec::new(),
            options: CalibrationOptions::quick(),
        };
        assert_eq!(empty.mean_abs_deviation_from_alpha(0.5), 0.0);
    }

    #[test]
    fn switch_cost_lookup_finds_only_measured_pairs() {
        let report = CalibrationReport {
            levels: Vec::new(),
            switches: vec![
                SwitchCalibration {
                    from_level: 0,
                    to_level: 1,
                    switch_cost_ms: 2.5,
                },
                SwitchCalibration {
                    from_level: 1,
                    to_level: 0,
                    switch_cost_ms: 1.75,
                },
            ],
            options: CalibrationOptions::quick(),
        };
        assert_eq!(report.switch_cost_ms(0, 1), Some(2.5));
        assert_eq!(report.switch_cost_ms(1, 0), Some(1.75));
        assert_eq!(report.switch_cost_ms(0, 0), None, "self-pairs not timed");
        assert_eq!(report.switch_cost_ms(0, 2), None);
    }

    #[test]
    fn options_validate() {
        assert!(CalibrationOptions::default().validate().is_ok());
        assert!(CalibrationOptions::quick().validate().is_ok());
        let bad = CalibrationOptions {
            max_batch: 0,
            ..CalibrationOptions::default()
        };
        assert!(bad.validate().is_err());
    }
}
