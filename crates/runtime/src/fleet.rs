//! Fleet-scale sharded serving: N simulated devices — each with its own
//! battery, [`RuntimeController`], [`ModelBank`] and
//! [`crate::DeadlineScheduler`] — fronted by a [`Router`] that assigns every
//! arriving request to the device with the most *serving headroom*.
//!
//! The battery-aware score of an alive device is
//!
//! ```text
//! score = w_headroom · soc
//!       + w_level    · (level_pos + 1) / levels
//!       − w_queue    · queue_len / queue_capacity
//!       − w_latency  · predicted_latency / deadline_budget
//! ```
//!
//! where `soc` is the state of charge, `level_pos` the active governor
//! level (higher = faster V/F point = more service capacity) and
//! `predicted_latency` the wait-until-free plus one base-latency service.
//! Requests try devices in descending score order, so a device whose
//! admission control rejects (queue full, certain miss) fails over to the
//! next-best one; a request is unroutable only when *every* device is dead
//! or rejecting. Dead devices are never ranked, so they never receive
//! traffic.
//!
//! [`RoutingPolicy::Predictive`] keeps the same formula but swaps the raw
//! state-of-charge term for *predicted time to death*: each device's EWMA
//! [`rt3_hardware::DrainRateTracker`] turns its battery trajectory into a
//! drain rate, and the router ranks by `min(time_to_death / horizon, 1)`.
//! That is what distinguishes "full battery draining fast" from "half
//! battery on a charger" — the CloneCloud-style offline-profiled cost model
//! steering online placement.
//!
//! Round-robin and sticky baselines share the same failover machinery and
//! differ only in the preference order, which keeps the comparison in
//! `examples/serve_fleet.rs` honest: battery awareness is the only delta.

use crate::controller::{HysteresisConfig, RuntimeController};
use crate::cost::{Analytic, CostConfig, CostModel, LatencyModel};
use crate::engine::{DeviceSim, RuntimePolicy, WINDOW_MS, WINDOW_S};
use crate::report::FleetReport;
use crate::scenario::FleetScenario;
use crate::scheduler::{DeadlineScheduler, Request, SchedulerConfig};
use crate::telemetry::{DeviceTelemetry, FleetTelemetry};
use crate::ModelBank;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rt3_core::{Rt3Config, SearchOutcome};
use rt3_hardware::{Battery, MemoryModel, PowerModel};
use rt3_pruning::PatternSpace;
use rt3_telemetry::{Clock, TelemetryConfig, WallClock};
use rt3_transformer::Model;
use std::sync::Arc;

/// How the router orders devices for each arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Score devices by battery headroom (raw state of charge), V/F level,
    /// queue depth and predicted service latency; highest score first.
    BatteryAware,
    /// Like [`RoutingPolicy::BatteryAware`] but the headroom term is the
    /// *predicted time to death* from the device's EWMA drain rate,
    /// normalised by [`RouterConfig::ttd_horizon_ms`] — a charging device
    /// outranks a full one that is burning down.
    Predictive,
    /// Cycle through alive devices request by request, ignoring state.
    RoundRobin,
    /// Keep hammering the current device until it dies or rejects, then
    /// move to the next alive one and stick there (primary/failover).
    Sticky,
}

impl RoutingPolicy {
    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingPolicy::BatteryAware => "battery-aware",
            RoutingPolicy::Predictive => "predictive",
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::Sticky => "sticky",
        }
    }
}

/// Weights of the battery-aware routing score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingWeights {
    /// Reward per unit of battery state of charge.
    pub headroom: f64,
    /// Reward for running at a higher (faster) governor level.
    pub level: f64,
    /// Penalty per unit of queue occupancy.
    pub queue: f64,
    /// Penalty per deadline-budget of predicted service latency.
    pub latency: f64,
}

impl Default for RoutingWeights {
    fn default() -> Self {
        // headroom dominates — the fleet exists to dance along the weakest
        // battery — with latency/queue pressure breaking headroom ties and
        // the level term nudging traffic towards devices already clocked up
        Self {
            headroom: 2.0,
            level: 0.25,
            queue: 1.0,
            latency: 1.0,
        }
    }
}

impl RoutingWeights {
    /// Validates the weights.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        for (name, w) in [
            ("headroom", self.headroom),
            ("level", self.level),
            ("queue", self.queue),
            ("latency", self.latency),
        ] {
            if !(w.is_finite() && w >= 0.0) {
                return Err(format!("routing weight {name} must be non-negative"));
            }
        }
        Ok(())
    }
}

/// Router parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterConfig {
    /// Preference-order policy.
    pub policy: RoutingPolicy,
    /// Score weights (used by [`RoutingPolicy::BatteryAware`] and
    /// [`RoutingPolicy::Predictive`]).
    pub weights: RoutingWeights,
    /// Horizon normalising the predictive policy's time-to-death term: a
    /// device predicted to survive at least this long counts as full
    /// headroom. Must be positive.
    pub ttd_horizon_ms: f64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            policy: RoutingPolicy::BatteryAware,
            weights: RoutingWeights::default(),
            // two minutes: on the mobile traces here a device with minutes
            // of predicted life left is, for routing purposes, healthy
            ttd_horizon_ms: 120_000.0,
        }
    }
}

impl RouterConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.ttd_horizon_ms.is_finite() && self.ttd_horizon_ms > 0.0) {
            return Err("ttd_horizon_ms must be positive and finite".into());
        }
        self.weights.validate()
    }
}

/// The router's per-request view of one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSnapshot {
    /// Whether the device battery still has charge (dead devices are never
    /// ranked).
    pub alive: bool,
    /// Battery state of charge in `[0, 1]`.
    pub state_of_charge: f64,
    /// Active governor level position (0 = lowest frequency).
    pub level_pos: usize,
    /// Number of governor levels on the device.
    pub levels: usize,
    /// Queued (admitted but unstarted) requests.
    pub queue_len: usize,
    /// Bound on the queue.
    pub queue_capacity: usize,
    /// Predicted single-request latency if admitted now: wait until a
    /// worker frees plus one base-latency service, in milliseconds.
    pub predicted_latency_ms: f64,
    /// Per-request deadline budget, for normalising the latency term.
    pub deadline_budget_ms: f64,
    /// Predicted milliseconds until the device's battery dies at its
    /// smoothed drain rate (`f64::INFINITY` while charging or unobserved);
    /// the headroom term of [`RoutingPolicy::Predictive`].
    pub time_to_death_ms: f64,
}

/// Assigns arriving requests to devices; deterministic for a fixed sequence
/// of snapshots (ties break on the lower device index).
#[derive(Debug, Clone)]
pub struct Router {
    config: RouterConfig,
    /// Next device position for round-robin.
    rr_next: usize,
    /// Home device for sticky routing.
    sticky_home: usize,
}

impl Router {
    /// Creates a router.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: RouterConfig) -> Self {
        config.validate().expect("invalid router configuration");
        Self {
            config,
            rr_next: 0,
            sticky_home: 0,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> RoutingPolicy {
        self.config.policy
    }

    /// Score of one device (higher = preferred). The headroom term is the
    /// raw state of charge for [`RoutingPolicy::BatteryAware`] and the
    /// horizon-normalised time to death for [`RoutingPolicy::Predictive`];
    /// every other term is shared.
    pub fn score(&self, snapshot: &DeviceSnapshot) -> f64 {
        let w = self.config.weights;
        let headroom_share = match self.config.policy {
            RoutingPolicy::Predictive => {
                (snapshot.time_to_death_ms / self.config.ttd_horizon_ms).min(1.0)
            }
            _ => snapshot.state_of_charge,
        };
        let level_share = if snapshot.levels == 0 {
            0.0
        } else {
            (snapshot.level_pos + 1) as f64 / snapshot.levels as f64
        };
        let queue_share = if snapshot.queue_capacity == 0 {
            1.0
        } else {
            snapshot.queue_len as f64 / snapshot.queue_capacity as f64
        };
        let latency_share = if snapshot.deadline_budget_ms > 0.0 {
            snapshot.predicted_latency_ms / snapshot.deadline_budget_ms
        } else {
            0.0
        };
        w.headroom * headroom_share + w.level * level_share
            - w.queue * queue_share
            - w.latency * latency_share
    }

    /// Preference order for one request: every *alive* device exactly once,
    /// best first. Failover walks this order, so as long as one admissible
    /// device exists the request is placed. Dead devices never appear.
    ///
    /// The order is a pure function of the snapshots and the router's
    /// internal cursor state; the cursors advance only on
    /// [`Router::commit`], so ranking is free of side effects.
    pub fn order(&self, snapshots: &[DeviceSnapshot]) -> Vec<usize> {
        let alive: Vec<usize> = (0..snapshots.len())
            .filter(|&i| snapshots[i].alive)
            .collect();
        if alive.is_empty() {
            return alive;
        }
        match self.config.policy {
            RoutingPolicy::BatteryAware | RoutingPolicy::Predictive => {
                let mut scored: Vec<(f64, usize)> = alive
                    .into_iter()
                    .map(|i| (self.score(&snapshots[i]), i))
                    .collect();
                // descending score; ties break on the lower device index so
                // routing stays deterministic
                scored.sort_by(|a, b| {
                    b.0.partial_cmp(&a.0)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.1.cmp(&b.1))
                });
                scored.into_iter().map(|(_, i)| i).collect()
            }
            RoutingPolicy::RoundRobin => rotate_from(&alive, self.rr_next % snapshots.len()),
            RoutingPolicy::Sticky => rotate_from(&alive, self.sticky_home % snapshots.len()),
        }
    }

    /// Commits a placement: the request went to `device` (or nowhere, when
    /// `device` is `None`), letting the round-robin cursor advance and the
    /// sticky home follow failovers.
    pub fn commit(&mut self, device: Option<usize>, device_count: usize) {
        match self.config.policy {
            RoutingPolicy::RoundRobin => {
                if device_count > 0 {
                    self.rr_next = (self.rr_next + 1) % device_count;
                }
            }
            RoutingPolicy::Sticky => {
                if let Some(placed) = device {
                    self.sticky_home = placed;
                }
            }
            RoutingPolicy::BatteryAware | RoutingPolicy::Predictive => {}
        }
    }
}

/// The positions of `alive`, rotated so the first one at or after `start`
/// comes first (wrapping around).
fn rotate_from(alive: &[usize], start: usize) -> Vec<usize> {
    let split = alive.partition_point(|&i| i < start);
    let mut order = Vec::with_capacity(alive.len());
    order.extend_from_slice(&alive[split..]);
    order.extend_from_slice(&alive[..split]);
    order
}

/// Fleet-serving parameters: the per-device serving knobs plus the router.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Request routing.
    pub router: RouterConfig,
    /// Per-request deadline: arrival + this budget, milliseconds.
    pub deadline_budget_ms: f64,
    /// Scheduler parameters of every device.
    pub scheduler: SchedulerConfig,
    /// Controller hysteresis of every device.
    pub hysteresis: HysteresisConfig,
    /// Shared cost-model configuration (batch amortisation) used to build
    /// the default [`Analytic`] model for every device; swap the whole
    /// model with [`Fleet::with_cost_model`].
    pub cost: CostConfig,
    /// Replay dispatched micro-batches as real sparse inference on every
    /// device's worker pool.
    pub real_inference: bool,
    /// Traffic seed (the arrival process is fleet-wide).
    pub seed: u64,
    /// What the run records, on every device and on the router
    /// ([`rt3_telemetry::TelemetryLevel::Off`] by default).
    pub telemetry: TelemetryConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            router: RouterConfig::default(),
            deadline_budget_ms: 400.0,
            scheduler: SchedulerConfig::default(),
            hysteresis: HysteresisConfig::default(),
            cost: CostConfig::default(),
            real_inference: true,
            seed: 0x7233,
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl FleetConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.deadline_budget_ms <= 0.0 || self.deadline_budget_ms.is_nan() {
            return Err("deadline_budget_ms must be positive".into());
        }
        self.cost.validate()?;
        self.router.validate()?;
        self.scheduler.validate()?;
        self.hysteresis.validate()?;
        self.telemetry.validate()?;
        Ok(())
    }
}

/// A fleet of simulated devices serving one arrival stream through a
/// [`Router`]. Every device runs the battery-aware adaptive policy on its
/// own battery, controller, bank and scheduler; the fleet shares only the
/// offline artifacts (model, masks, pattern space, search outcome).
pub struct Fleet<'m, M: Model> {
    pub(crate) devices: Vec<DeviceSim<'m, M>>,
    pub(crate) router: Router,
    pub(crate) config: FleetConfig,
    /// The trace the fleet was built for; [`Fleet::run`] plays exactly this
    /// one, so devices can never be driven by mismatched profiles.
    pub(crate) scenario: FleetScenario,
}

impl<'m, M: Model> Fleet<'m, M> {
    /// Builds one [`DeviceSim`] per profile in `scenario`, each with its own
    /// model bank over the search's best solution and a battery pre-drained
    /// to the profile's initial state of charge.
    ///
    /// # Panics
    ///
    /// Panics if the fleet scenario or configuration is invalid, or the
    /// search outcome has no feasible best solution.
    pub fn new(
        model: &'m M,
        backbone_masks: rt3_transformer::MaskSet,
        space: &PatternSpace,
        outcome: &SearchOutcome,
        rt3: &Rt3Config,
        scenario: &FleetScenario,
        config: FleetConfig,
    ) -> Self {
        scenario.validate().expect("invalid fleet scenario");
        config.validate().expect("invalid fleet configuration");
        let best = outcome
            .best
            .as_ref()
            .expect("search outcome has no feasible solution to serve");
        assert_eq!(
            best.actions.len(),
            rt3.governor.levels().len(),
            "one action per governor level is required"
        );
        let cost: Arc<dyn CostModel> = Arc::new(Analytic::new(
            LatencyModel {
                predictor: rt3.predictor,
                workload_config: rt3.workload_config.clone(),
                seq_len: rt3.seq_len,
            },
            config.cost,
        ));
        let levels = rt3.governor.levels().to_vec();
        let duration_s = scenario.duration_s();
        // one wall clock shared by every device's kernel/build timings
        let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
        let devices = scenario
            .devices
            .iter()
            .map(|profile| {
                let bank = ModelBank::new(
                    model,
                    backbone_masks.clone(),
                    space,
                    &best.actions,
                    MemoryModel::odroid_xu3(),
                    levels.len(),
                );
                let mut battery = Battery::new(profile.battery_capacity_j);
                let deficit = profile.battery_capacity_j * (1.0 - profile.initial_soc);
                if deficit > 0.0 {
                    let drained = battery.drain(deficit);
                    debug_assert!(drained, "initial_soc in (0, 1] leaves a drainable deficit");
                }
                DeviceSim::new(
                    bank,
                    RuntimeController::new(rt3.governor.clone(), config.hysteresis),
                    DeadlineScheduler::new(config.scheduler),
                    battery,
                    RuntimePolicy::Adaptive,
                    Arc::clone(&cost),
                    PowerModel::cortex_a7(),
                    levels.clone(),
                    config.deadline_budget_ms,
                    config.real_inference,
                    duration_s,
                    DeviceTelemetry::new(config.telemetry, Arc::clone(&clock)),
                )
            })
            .collect();
        Self {
            devices,
            router: Router::new(config.router),
            config,
            scenario: scenario.clone(),
        }
    }

    /// Replaces every device's cost model (e.g. with a
    /// [`crate::cost::Calibrated`] model from a [`crate::cost::calibrate`]
    /// pass) before the trace is played.
    #[must_use]
    pub fn with_cost_model(mut self, cost: Arc<dyn CostModel>) -> Self {
        for device in &mut self.devices {
            device.set_cost_model(Arc::clone(&cost));
        }
        self
    }

    /// Number of devices in the fleet.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The trace the fleet was built for and will play.
    pub fn scenario(&self) -> &FleetScenario {
        &self.scenario
    }

    /// Plays the fleet's scenario to completion and reports per-device and
    /// fleet aggregates.
    pub fn run(mut self) -> FleetReport {
        let scenario = self.scenario.clone();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut next_id = 0u64;
        let mut arrivals_total = 0u64;
        let mut unroutable = 0u64;
        let n = self.devices.len();
        let device_names: Vec<String> = scenario.devices.iter().map(|p| p.name.clone()).collect();
        let mut fleet_telemetry = FleetTelemetry::new(self.config.telemetry, &device_names);

        for t_s in 0..scenario.duration_s() {
            let now_ms = t_s as f64 * WINDOW_MS;
            let window_end_ms = now_ms + WINDOW_MS;

            // 1. per-device battery events, death checks, level decisions
            let mut serving = vec![false; n];
            for (i, device) in self.devices.iter_mut().enumerate() {
                let profile = &scenario.devices[i];
                serving[i] = device.begin_window(
                    t_s,
                    now_ms,
                    profile.battery_cliff_at(t_s),
                    profile.charge_w_at(t_s) * WINDOW_S,
                    profile.thermal_cap_at(t_s),
                );
            }

            // 2. fleet-wide arrivals, routed one by one with failover
            let offsets = scenario.arrivals.arrivals_in_second(t_s, &mut rng);
            arrivals_total += offsets.len() as u64;
            let mut routed = vec![0u64; n];
            let mut rejected = vec![0u64; n];
            for offset in &offsets {
                let arrival_ms = now_ms + offset;
                let snapshots: Vec<DeviceSnapshot> = self
                    .devices
                    .iter()
                    .map(|d| Self::snapshot(d, arrival_ms))
                    .collect();
                let order = self.router.order(&snapshots);
                let mut placed = None;
                for &i in &order {
                    let request = Request {
                        id: next_id,
                        arrival_ms,
                        deadline_ms: arrival_ms + self.config.deadline_budget_ms,
                    };
                    match self.devices[i].try_admit(request) {
                        Ok(()) => {
                            routed[i] += 1;
                            placed = Some(i);
                            break;
                        }
                        Err(_) => {
                            rejected[i] += 1;
                            if let Some(ft) = &mut fleet_telemetry {
                                let id = ft.failovers[i];
                                ft.add(id, 1);
                            }
                        }
                    }
                }
                if let Some(ft) = &mut fleet_telemetry {
                    let arrivals_id = ft.arrivals;
                    ft.add(arrivals_id, 1);
                    match placed {
                        Some(i) => {
                            let id = ft.routed[i];
                            ft.add(id, 1);
                        }
                        None => {
                            let id = ft.unroutable;
                            ft.add(id, 1);
                        }
                    }
                }
                if placed.is_none() {
                    unroutable += 1;
                }
                self.router.commit(placed, n);
                next_id += 1;
            }

            // 3. per-device dispatch, energy and window reports
            for (i, device) in self.devices.iter_mut().enumerate() {
                if serving[i] {
                    device.end_window(
                        t_s,
                        window_end_ms,
                        routed[i],
                        rejected[i],
                        scenario.arrivals.background_w(t_s) * WINDOW_S,
                    );
                } else {
                    device.record_dead_window(t_s, routed[i]);
                }
            }
        }

        let routing = self.router.policy().label().to_string();
        let devices = self
            .devices
            .into_iter()
            .zip(scenario.devices)
            .map(|(device, profile)| device.into_report(profile.name, "adaptive".to_string()).0)
            .collect();
        FleetReport {
            scenario: self.scenario.name,
            routing,
            arrivals: arrivals_total,
            unroutable,
            devices,
            telemetry: fleet_telemetry.map(|ft| ft.snapshot()),
        }
    }

    /// The router's view of one device for a request arriving at
    /// `arrival_ms`.
    pub(crate) fn snapshot(device: &DeviceSim<'m, M>, arrival_ms: f64) -> DeviceSnapshot {
        DeviceSnapshot {
            alive: !device.is_dead(),
            state_of_charge: device.state_of_charge(),
            level_pos: device.active_level().unwrap_or(0),
            levels: device.level_count(),
            queue_len: device.queue_len(),
            queue_capacity: device.queue_capacity(),
            predicted_latency_ms: device.predicted_latency_ms(arrival_ms),
            deadline_budget_ms: device.deadline_budget_ms(),
            time_to_death_ms: device.time_to_death_ms(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(alive: bool, soc: f64, queue_len: usize, predicted_ms: f64) -> DeviceSnapshot {
        DeviceSnapshot {
            alive,
            state_of_charge: soc,
            level_pos: 1,
            levels: 3,
            queue_len,
            queue_capacity: 64,
            predicted_latency_ms: predicted_ms,
            deadline_budget_ms: 400.0,
            time_to_death_ms: 60_000.0,
        }
    }

    fn router_config(policy: RoutingPolicy) -> RouterConfig {
        RouterConfig {
            policy,
            ..RouterConfig::default()
        }
    }

    #[test]
    fn battery_aware_prefers_headroom_and_skips_the_dead() {
        let router = Router::new(RouterConfig::default());
        let snapshots = vec![
            snap(true, 0.2, 0, 50.0),
            snap(false, 1.0, 0, 50.0), // dead: best battery but never ranked
            snap(true, 0.9, 0, 50.0),
            snap(true, 0.5, 0, 50.0),
        ];
        let order = router.order(&snapshots);
        assert_eq!(order, vec![2, 3, 0], "descending headroom, no dead device");
    }

    #[test]
    fn predictive_ranks_by_time_to_death_not_state_of_charge() {
        let router = Router::new(router_config(RoutingPolicy::Predictive));
        // full battery draining fast vs half battery on a charger: raw
        // headroom prefers the first, predictive routing the second
        let mut fast_drain = snap(true, 1.0, 0, 50.0);
        fast_drain.time_to_death_ms = 20_000.0;
        let mut charging = snap(true, 0.5, 0, 50.0);
        charging.time_to_death_ms = f64::INFINITY;
        let snapshots = vec![fast_drain, charging];
        assert_eq!(router.order(&snapshots), vec![1, 0]);
        let headroom = Router::new(RouterConfig::default());
        assert_eq!(headroom.order(&snapshots), vec![0, 1], "soc ranks inverse");
    }

    #[test]
    fn predictive_headroom_saturates_at_the_horizon() {
        let router = Router::new(router_config(RoutingPolicy::Predictive));
        let mut at_horizon = snap(true, 0.3, 0, 50.0);
        at_horizon.time_to_death_ms = 120_000.0;
        let mut beyond = snap(true, 0.3, 0, 50.0);
        beyond.time_to_death_ms = 500_000.0;
        assert_eq!(
            router.score(&at_horizon),
            router.score(&beyond),
            "time to death beyond the horizon adds no further score"
        );
        assert_eq!(
            router.order(&[at_horizon, beyond]),
            vec![0, 1],
            "saturated tie breaks on the device index"
        );
    }

    #[test]
    fn router_rejects_a_non_positive_horizon() {
        let config = RouterConfig {
            ttd_horizon_ms: 0.0,
            ..RouterConfig::default()
        };
        assert!(config.validate().is_err());
    }

    #[test]
    fn queue_and_latency_pressure_override_equal_headroom() {
        let router = Router::new(RouterConfig::default());
        let snapshots = vec![
            snap(true, 0.8, 60, 350.0), // nearly full queue, slow
            snap(true, 0.8, 2, 60.0),
        ];
        assert_eq!(router.order(&snapshots), vec![1, 0]);
    }

    #[test]
    fn round_robin_cycles_and_skips_dead_devices() {
        let mut router = Router::new(router_config(RoutingPolicy::RoundRobin));
        let snapshots = vec![
            snap(true, 0.9, 0, 50.0),
            snap(false, 0.9, 0, 50.0),
            snap(true, 0.9, 0, 50.0),
        ];
        assert_eq!(router.order(&snapshots), vec![0, 2]);
        router.commit(Some(0), 3);
        assert_eq!(
            router.order(&snapshots),
            vec![2, 0],
            "cursor advanced past 1"
        );
        router.commit(Some(2), 3);
        assert_eq!(router.order(&snapshots), vec![2, 0], "dead 1 is skipped");
        router.commit(Some(2), 3);
        assert_eq!(router.order(&snapshots), vec![0, 2], "wraps around");
    }

    #[test]
    fn sticky_holds_its_home_until_it_fails_over() {
        let mut router = Router::new(router_config(RoutingPolicy::Sticky));
        let all_alive = vec![
            snap(true, 0.9, 0, 50.0),
            snap(true, 0.9, 0, 50.0),
            snap(true, 0.9, 0, 50.0),
        ];
        assert_eq!(router.order(&all_alive), vec![0, 1, 2]);
        router.commit(Some(0), 3);
        assert_eq!(router.order(&all_alive), vec![0, 1, 2], "home stays put");
        // home 0 died: the failover placement moves the home to device 1
        let zero_dead = vec![
            snap(false, 0.9, 0, 50.0),
            snap(true, 0.9, 0, 50.0),
            snap(true, 0.9, 0, 50.0),
        ];
        assert_eq!(router.order(&zero_dead), vec![1, 2]);
        router.commit(Some(1), 3);
        assert_eq!(router.order(&all_alive), vec![1, 2, 0], "new home sticks");
    }

    #[test]
    fn order_is_empty_only_when_every_device_is_dead() {
        let router = Router::new(RouterConfig::default());
        let dead = vec![snap(false, 0.5, 0, 50.0); 3];
        assert!(router.order(&dead).is_empty());
        let mut one_alive = dead.clone();
        one_alive[1].alive = true;
        assert_eq!(router.order(&one_alive), vec![1]);
    }
}
