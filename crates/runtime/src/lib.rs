//! # rt3-runtime
//!
//! The battery-aware **online serving engine** of the RT3 reproduction: it
//! turns the offline artifacts (Level-1 backbone, Level-2 pattern search
//! outcome) into a running service that "dances along the battery" —
//! switching pattern sets as the state of charge, charger and thermal state
//! change, while meeting per-request deadlines. See DESIGN.md for the
//! architecture.
//!
//! * [`ModelBank`] — one pre-materialised block-sparse model per V/F level,
//!   built lazily from the search's best solution with LRU eviction and
//!   switch-cost accounting from [`rt3_hardware::MemoryModel`].
//! * [`RuntimeController`] — the paper's battery governor plus dwell-window
//!   and state-of-charge hysteresis, with thermal-cap clamping.
//! * [`cost`] — the unified cost-model layer behind every prediction:
//!   the [`CostModel`] trait with the default fixed-α [`Analytic`] model
//!   and the pool-measured [`Calibrated`] model (see [`calibrate`]).
//! * [`DeadlineScheduler`] — bounded queue, admission control, greedy
//!   micro-batching and simulated workers whose service times come from
//!   the shared cost model over the paper's
//!   [`rt3_hardware::PerformancePredictor`].
//! * [`pool`] — a real multi-threaded worker pool that replays every
//!   dispatched micro-batch as actual pattern-pruned sparse matmuls.
//! * [`Scenario`] — trace-driven workloads (constant drain, bursty traffic,
//!   cliff discharge, charge-while-serving, thermal cap, diurnal day curve).
//! * [`ServeEngine`] — the event loop tying it together, producing a
//!   [`ServeReport`] with p50/p95/p99 latency, deadline-miss rate, energy
//!   and switch counts.
//! * [`Fleet`] / [`Router`] — cross-device sharding: N simulated devices
//!   (each with its own battery, controller, bank and scheduler) behind a
//!   battery-headroom or predictive (time-to-death) router with failover,
//!   played from a [`FleetScenario`] into a [`FleetReport`].
//! * [`TelemetryConfig`] — opt-in observability from `rt3-telemetry`:
//!   streaming counters/gauges/histograms per device and router, a
//!   request-lifecycle trace (admit → queue → batch → infer → complete) and
//!   a controller decision audit with prediction-vs-actual residuals, all
//!   exportable as JSONL via [`TelemetrySnapshot`]. `Off` (the default)
//!   keeps the engine byte-identical to the uninstrumented build.
//!
//! # Examples
//!
//! ```
//! use rt3_core::{build_search_space, run_level1, run_level2_search};
//! use rt3_core::{Rt3Config, SurrogateEvaluator, TaskProfile};
//! use rt3_runtime::{RuntimePolicy, Scenario, ServeConfig, ServeEngine};
//! use rt3_transformer::{TransformerConfig, TransformerLm};
//!
//! let model = TransformerLm::new(TransformerConfig::tiny(32), 0);
//! let config = Rt3Config::tiny_test();
//! let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
//! let backbone = run_level1(&model, &config, &mut evaluator);
//! let space = build_search_space(&model, &backbone, &config);
//! let outcome = run_level2_search(&model, &backbone, &space, &config, &mut evaluator);
//!
//! let mut engine = ServeEngine::new(
//!     &model,
//!     backbone.masks.clone(),
//!     &space,
//!     &outcome,
//!     config,
//!     ServeConfig { real_inference: false, ..ServeConfig::default() },
//! );
//! let report = engine.run(&Scenario::ConstantDrain {
//!     duration_s: 5,
//!     rps: 2.0,
//!     background_w: 0.1,
//! });
//! assert!(report.completed > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
pub mod chaos;
mod controller;
pub mod cost;
mod engine;
mod fleet;
pub mod pool;
mod report;
mod scenario;
mod scheduler;
mod telemetry;

pub use bank::{BankStats, BankedModel, InferScratch, ModelBank};
pub use chaos::{
    check_invariants, ChaosOverlay, ChaosReport, ChaosScenario, ClientPolicy, ClientReport,
};
pub use controller::{HysteresisConfig, LevelDecision, RuntimeController, Telemetry};
pub use cost::{
    calibrate, AmortisationCurve, Analytic, Calibrated, CalibrationOptions, CalibrationReport,
    CostConfig, CostModel, LatencyModel, SwitchCalibration,
};
pub use engine::{RuntimePolicy, ServeConfig, ServeEngine};
pub use fleet::{
    DeviceSnapshot, Fleet, FleetConfig, Router, RouterConfig, RoutingPolicy, RoutingWeights,
};
pub use report::{FleetReport, ServeReport, WindowReport};
pub use rt3_telemetry::{TelemetryConfig, TelemetryLevel, TelemetrySnapshot};
pub use scenario::{DeviceProfile, FleetScenario, Scenario};
pub use scheduler::{Completion, DeadlineScheduler, RejectReason, Request, SchedulerConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use rt3_core::{
        build_search_space, run_level1, run_level2_search, Rt3Config, SearchOutcome,
        SurrogateEvaluator, TaskProfile,
    };
    use rt3_pruning::PatternSpace;
    use rt3_transformer::{TransformerConfig, TransformerLm};

    fn offline_artifacts() -> (
        TransformerLm,
        rt3_transformer::MaskSet,
        PatternSpace,
        SearchOutcome,
        Rt3Config,
    ) {
        let model = TransformerLm::new(TransformerConfig::tiny(32), 13);
        let config = Rt3Config::tiny_test();
        let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
        let backbone = run_level1(&model, &config, &mut evaluator);
        let space = build_search_space(&model, &backbone, &config);
        let outcome = run_level2_search(&model, &backbone, &space, &config, &mut evaluator);
        (model, backbone.masks, space, outcome, config)
    }

    fn serve_config() -> ServeConfig {
        ServeConfig {
            battery_capacity_j: 40.0,
            real_inference: false,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn adaptive_run_serves_a_constant_trace_end_to_end() {
        let (model, masks, space, outcome, config) = offline_artifacts();
        let mut engine = ServeEngine::new(&model, masks, &space, &outcome, config, serve_config());
        let report = engine.run(&Scenario::ConstantDrain {
            duration_s: 30,
            rps: 3.0,
            background_w: 0.2,
        });
        assert_eq!(report.windows.len(), 30);
        assert!(report.completed > 0);
        assert!(report.arrivals >= report.completed);
        assert!(report.p95_ms() >= report.p50_ms());
        assert!(
            report.final_state_of_charge < 1.0,
            "serving must drain the battery"
        );
        assert!(report.inference_energy_j > 0.0);
    }

    #[test]
    fn real_inference_pool_produces_a_stable_checksum() {
        let (model, masks, space, outcome, config) = offline_artifacts();
        let serve = ServeConfig {
            battery_capacity_j: 40.0,
            real_inference: true,
            ..ServeConfig::default()
        };
        let scenario = Scenario::ConstantDrain {
            duration_s: 5,
            rps: 2.0,
            background_w: 0.1,
        };
        let mut engine = ServeEngine::new(
            &model,
            masks.clone(),
            &space,
            &outcome,
            config.clone(),
            serve.clone(),
        );
        let a = engine.run(&scenario);
        let mut engine2 = ServeEngine::new(&model, masks, &space, &outcome, config, serve);
        let b = engine2.run(&scenario);
        assert!(a.real_batches > 0);
        assert_eq!(a.inference_checksum, b.inference_checksum);
        assert_eq!(a.completed, b.completed, "simulation must be deterministic");
    }

    #[test]
    fn adaptive_switches_levels_as_the_battery_drains() {
        let (model, masks, space, outcome, config) = offline_artifacts();
        let serve = ServeConfig {
            battery_capacity_j: 13.0, // small battery: the trace crosses both thresholds
            real_inference: false,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(&model, masks, &space, &outcome, config, serve);
        let report = engine.run(&Scenario::ConstantDrain {
            duration_s: 60,
            rps: 4.0,
            background_w: 0.2,
        });
        assert!(
            report.switches >= 2,
            "expected level step-downs, got {}",
            report.switches
        );
        assert!(report.switch_time_ms > 0.0);
        assert!(
            report.runs_per_level.iter().filter(|&&r| r > 0).count() >= 2,
            "work should spread over multiple levels: {:?}",
            report.runs_per_level
        );
    }

    #[test]
    fn fixed_level_baseline_never_switches() {
        let (model, masks, space, outcome, config) = offline_artifacts();
        let top = config.governor.levels().len() - 1;
        let serve = ServeConfig {
            battery_capacity_j: 40.0,
            policy: RuntimePolicy::FixedLevel(top),
            real_inference: false,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(&model, masks, &space, &outcome, config, serve);
        let report = engine.run(&Scenario::ConstantDrain {
            duration_s: 20,
            rps: 3.0,
            background_w: 0.2,
        });
        assert_eq!(report.switches, 0);
        assert_eq!(report.policy, "fixed-l6");
        assert!(report.runs_per_level[top] > 0);
        assert!(report.runs_per_level[..top].iter().all(|&r| r == 0));
    }

    #[test]
    fn dead_battery_drops_requests_and_is_reported() {
        let (model, masks, space, outcome, config) = offline_artifacts();
        let serve = ServeConfig {
            battery_capacity_j: 3.0, // dies mid-trace
            real_inference: false,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(&model, masks, &space, &outcome, config, serve);
        let report = engine.run(&Scenario::ConstantDrain {
            duration_s: 40,
            rps: 4.0,
            background_w: 0.3,
        });
        let died = report.died_at_s.expect("a 3 J battery cannot survive 40 s");
        assert!(died < 40);
        assert!(report.dropped_dead_battery > 0);
        assert!(report.miss_rate() > 0.2);
    }

    #[test]
    fn thermal_cap_scenario_clamps_the_level() {
        let (model, masks, space, outcome, config) = offline_artifacts();
        let mut engine = ServeEngine::new(&model, masks, &space, &outcome, config, serve_config());
        let report = engine.run(&Scenario::ThermalCap {
            duration_s: 30,
            rps: 3.0,
            background_w: 0.1,
            cap_from_s: 5,
            cap_until_s: 25,
            cap_level_pos: 0,
        });
        for w in &report.windows {
            if (5..25).contains(&w.t_s) {
                assert_eq!(w.level_pos, Some(0), "cap must clamp window {}", w.t_s);
            }
        }
        assert!(report.completed > 0);
    }

    fn fleet_config() -> FleetConfig {
        FleetConfig {
            real_inference: false,
            ..FleetConfig::default()
        }
    }

    fn run_fleet(policy: RoutingPolicy, scenario: &FleetScenario) -> FleetReport {
        let (model, masks, space, outcome, config) = offline_artifacts();
        let fleet_cfg = FleetConfig {
            router: RouterConfig {
                policy,
                ..RouterConfig::default()
            },
            ..fleet_config()
        };
        let fleet = Fleet::new(
            &model, masks, &space, &outcome, &config, scenario, fleet_cfg,
        );
        fleet.run()
    }

    fn run_chaos(policy: RoutingPolicy, chaos: &ChaosScenario, seed: u64) -> ChaosReport {
        let (model, masks, space, outcome, config) = offline_artifacts();
        let fleet_cfg = ChaosScenario::storm_fleet_config(policy, seed);
        let scenario = chaos.fleet_scenario();
        let fleet = Fleet::new(
            &model, masks, &space, &outcome, &config, &scenario, fleet_cfg,
        );
        fleet.run_chaos(chaos)
    }

    #[test]
    fn chaos_retry_storm_serves_and_satisfies_every_invariant() {
        let chaos = ChaosScenario::retry_storm();
        let report = run_chaos(RoutingPolicy::Predictive, &chaos, 11);
        assert!(report.clients.jobs > 0, "the storm issued jobs");
        assert!(report.clients.succeeded > 0, "some jobs succeeded");
        assert!(
            report.fleet.deaths() >= 1,
            "the death overlay killed a device"
        );
        assert!(
            report.clients.retries > 0,
            "a death under load must trigger retries"
        );
        if let Err(violations) = check_invariants(&chaos, &report) {
            panic!("invariant violations:\n{}", violations.join("\n"));
        }
    }

    #[test]
    fn chaos_runs_are_deterministic_under_a_seed() {
        let chaos = ChaosScenario::flash_crowd();
        let mut a = run_chaos(RoutingPolicy::BatteryAware, &chaos, 7);
        let mut b = run_chaos(RoutingPolicy::BatteryAware, &chaos, 7);
        // everything except real wall-clock timings is a function of the
        // seed: the scrubbed reports must be bit-exact
        a.scrub_wall_clock();
        b.scrub_wall_clock();
        assert_eq!(a, b, "same seed, same replay");
        let mut c = run_chaos(RoutingPolicy::BatteryAware, &chaos, 8);
        c.scrub_wall_clock();
        // at an integer arrival rate the per-window counts are
        // seed-independent, but the offsets (and so latencies) are not
        assert_ne!(a, c, "a different seed draws different traffic");
    }

    #[test]
    fn predictive_routing_rides_out_the_retry_storm_best() {
        let chaos = ChaosScenario::retry_storm();
        let predictive = run_chaos(RoutingPolicy::Predictive, &chaos, 42);
        let round_robin = run_chaos(RoutingPolicy::RoundRobin, &chaos, 42);
        assert!(
            predictive.clients.retry_amplification() < round_robin.clients.retry_amplification(),
            "predictive {} must amplify less than round-robin {}",
            predictive.clients.retry_amplification(),
            round_robin.clients.retry_amplification()
        );
        // the mechanism: round-robin keeps feeding d3's nearly-dead battery
        // and loses it mid-crowd; predictive starves it and keeps it alive
        let d3_pred = &predictive.fleet.devices[3];
        let d3_rr = &round_robin.fleet.devices[3];
        match (d3_pred.died_at_s, d3_rr.died_at_s) {
            (None, Some(_)) => {}
            (Some(pred_death), Some(rr_death)) => assert!(
                pred_death > rr_death,
                "predictive must keep d3 alive longer ({pred_death} vs {rr_death})"
            ),
            (pred, rr) => panic!("round-robin must kill d3 (predictive {pred:?}, rr {rr:?})"),
        }
    }

    #[test]
    fn calibrated_cost_model_swaps_into_the_engine() {
        use std::sync::Arc;
        let (model, masks, space, outcome, config) = offline_artifacts();
        let scenario = Scenario::ConstantDrain {
            duration_s: 20,
            rps: 3.0,
            background_w: 0.2,
        };
        let mut engine = ServeEngine::new(
            &model,
            masks,
            &space,
            &outcome,
            config.clone(),
            serve_config(),
        );
        let analytic = engine.run(&scenario);
        assert_eq!(analytic.cost_model, "analytic");
        // a synthetic measured curve (flat amortisation: batches are cheap)
        let curves = vec![
            AmortisationCurve::from_raw(&[1.0, 1.1, 1.15, 1.18]);
            config.governor.levels().len()
        ];
        let latency = LatencyModel {
            predictor: config.predictor,
            workload_config: config.workload_config.clone(),
            seq_len: config.seq_len,
        };
        engine.set_cost_model(Arc::new(Calibrated::new(latency, curves)));
        let calibrated = engine.run(&scenario);
        assert_eq!(calibrated.cost_model, "calibrated");
        assert!(calibrated.completed > 0);
        assert_eq!(
            calibrated.arrivals, analytic.arrivals,
            "the arrival process is independent of the cost model"
        );
        // cheaper batches can only speed the tail up
        assert!(calibrated.p95_ms() <= analytic.p95_ms());
    }

    #[test]
    fn predictive_fleet_run_is_deterministic_and_serves() {
        let scenario = FleetScenario::heterogeneous_cliff();
        let a = run_fleet(RoutingPolicy::Predictive, &scenario);
        let b = run_fleet(RoutingPolicy::Predictive, &scenario);
        assert_eq!(a, b, "same seed and trace must replay identically");
        assert_eq!(a.routing, "predictive");
        assert!(a.completed() > 0);
        let routed: u64 = a.devices.iter().map(|d| d.arrivals).sum();
        assert_eq!(routed + a.unroutable, a.arrivals);
    }

    #[test]
    fn fleet_serves_the_heterogeneous_cliff_trace_end_to_end() {
        let scenario = FleetScenario::heterogeneous_cliff();
        let report = run_fleet(RoutingPolicy::BatteryAware, &scenario);
        assert_eq!(report.devices.len(), 4);
        assert_eq!(report.routing, "battery-aware");
        assert!(report.arrivals > 0);
        assert!(report.completed() > 0);
        // every device carries the full window trace, named by its profile
        for (device, profile) in report.devices.iter().zip(&scenario.devices) {
            assert_eq!(device.scenario, profile.name);
            assert_eq!(device.windows.len(), scenario.duration_s() as usize);
        }
        // routed traffic + unroutable covers every arrival
        let routed: u64 = report.devices.iter().map(|d| d.arrivals).sum();
        assert_eq!(routed + report.unroutable, report.arrivals);
        assert!(report.load_imbalance() >= 1.0);
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let scenario = FleetScenario::heterogeneous_cliff();
        let a = run_fleet(RoutingPolicy::BatteryAware, &scenario);
        let b = run_fleet(RoutingPolicy::BatteryAware, &scenario);
        assert_eq!(a, b, "same seed and trace must replay identically");
    }

    #[test]
    fn dead_fleet_devices_receive_no_traffic() {
        // a tiny battery guarantees at least one death under steady load
        let mut scenario = FleetScenario::heterogeneous_cliff();
        scenario.devices[0].battery_capacity_j = 2.0;
        scenario.devices[0].cliff = None;
        let report = run_fleet(RoutingPolicy::BatteryAware, &scenario);
        let d0 = &report.devices[0];
        let died_at = d0.died_at_s.expect("a 2 J battery cannot survive");
        for w in &d0.windows {
            if w.t_s >= died_at {
                assert_eq!(
                    w.arrivals, 0,
                    "router must not send traffic to a dead device (window {})",
                    w.t_s
                );
            }
        }
        // the fleet as a whole keeps serving through the death
        assert!(report.completed() > 0);
        assert!(report.deaths() >= 1);
    }

    #[test]
    fn diurnal_fleet_trace_swings_load_across_the_day() {
        let scenario = FleetScenario::diurnal(5); // 120 s compressed day
        let report = run_fleet(RoutingPolicy::BatteryAware, &scenario);
        assert_eq!(report.scenario, "fleet-diurnal-24h");
        assert!(report.arrivals > 0);
        // midday windows must carry more fleet traffic than the midnight edge
        let window_total = |t: u32| -> u64 {
            report
                .devices
                .iter()
                .flat_map(|d| &d.windows)
                .filter(|w| w.t_s == t)
                .map(|w| w.arrivals)
                .sum()
        };
        let trough: u64 = (0..5).map(window_total).sum();
        let peak: u64 = (58..63).map(window_total).sum();
        assert!(
            peak > trough,
            "noon traffic ({peak}) must exceed midnight traffic ({trough})"
        );
    }

    #[test]
    fn charge_while_serving_recovers_state_of_charge() {
        let (model, masks, space, outcome, config) = offline_artifacts();
        let serve = ServeConfig {
            battery_capacity_j: 25.0,
            real_inference: false,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(&model, masks, &space, &outcome, config, serve);
        let report = engine.run(&Scenario::ChargeWhileServing {
            duration_s: 40,
            rps: 3.0,
            background_w: 0.2,
            charge_from_s: 20,
            charge_w: 3.0,
        });
        let soc_at = |t: u32| {
            report
                .windows
                .iter()
                .find(|w| w.t_s == t)
                .map(|w| w.state_of_charge)
                .expect("window exists")
        };
        assert!(
            soc_at(19) < soc_at(39),
            "charging must raise the state of charge"
        );
        assert!(report.died_at_s.is_none());
    }
}
