//! Glue between the serving engine and `rt3-telemetry`: the per-device
//! metric schema, the trace/audit recorders and the prediction bookkeeping
//! behind the cost-model residuals.
//!
//! A [`DeviceTelemetry`] exists only when the configured
//! [`TelemetryLevel`] is above `Off` — the engine holds an
//! `Option<DeviceTelemetry>`, so an uninstrumented run touches no telemetry
//! code at all. At `Counters` the device keeps one [`MetricShard`] of
//! counters/gauges/histograms (pool workers time their batches locally and
//! the timings fold into that shard at window boundaries); `Full` adds the
//! request trace, the controller decision audit and per-request prediction
//! tracking for the residuals.

use rt3_telemetry::{
    Clock, CounterId, DecisionAudit, DecisionRecord, GaugeId, HistogramId, MetricRegistry,
    MetricShard, ObsPlane, TelemetryConfig, TelemetryLevel, TelemetrySnapshot, TraceEvent,
    TraceRecorder,
};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// Pass-through hasher for request-id keys: ids are dense sequential
/// integers, so they distribute over the table without mixing, and the
/// per-request SipHash cost (twice per request at `Full`: note + settle)
/// is measurable against the telemetry overhead budget.
#[derive(Default)]
struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // only u64 keys are expected, but stay correct for any input
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }

    fn write_u64(&mut self, id: u64) {
        self.0 = id;
    }
}

/// The fixed metric schema of one serving device. Names are part of the
/// JSONL contract documented in DESIGN.md §9.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DeviceMetricIds {
    // scheduler / admission
    pub admitted: CounterId,
    pub rejected_queue_full: CounterId,
    pub rejected_certain_miss: CounterId,
    pub completed: CounterId,
    pub deadline_missed: CounterId,
    pub dropped_dead: CounterId,
    pub dropped_trace_end: CounterId,
    pub queue_depth: GaugeId,
    // controller / battery
    pub switches: CounterId,
    pub windows_served: CounterId,
    pub windows_dead: CounterId,
    pub state_of_charge: GaugeId,
    pub active_level: GaugeId,
    pub drain_rate_w: GaugeId,
    pub time_to_death_ms: GaugeId,
    pub switch_time_ms: HistogramId,
    // latency breakdown
    pub latency_ms: HistogramId,
    pub queue_wait_ms: HistogramId,
    pub infer_ms: HistogramId,
    pub batch_size: HistogramId,
    // model bank
    pub bank_hits: CounterId,
    pub bank_builds: CounterId,
    pub bank_evictions: CounterId,
    pub bank_build_wall_ms: HistogramId,
    // worker pool (timed locally per worker, folded in per window)
    pub pool_batches: CounterId,
    pub pool_batch_wall_ms: HistogramId,
}

impl DeviceMetricIds {
    fn register(registry: &mut MetricRegistry) -> Self {
        Self {
            admitted: registry.counter("requests_admitted"),
            rejected_queue_full: registry.counter("requests_rejected_queue_full"),
            rejected_certain_miss: registry.counter("requests_rejected_certain_miss"),
            completed: registry.counter("requests_completed"),
            deadline_missed: registry.counter("deadline_missed"),
            dropped_dead: registry.counter("requests_dropped_dead"),
            dropped_trace_end: registry.counter("requests_dropped_trace_end"),
            queue_depth: registry.gauge("queue_depth"),
            switches: registry.counter("switches"),
            windows_served: registry.counter("windows_served"),
            windows_dead: registry.counter("windows_dead"),
            state_of_charge: registry.gauge("state_of_charge"),
            active_level: registry.gauge("active_level"),
            drain_rate_w: registry.gauge("drain_rate_w"),
            time_to_death_ms: registry.gauge("time_to_death_ms"),
            switch_time_ms: registry.histogram("switch_time_ms"),
            latency_ms: registry.histogram("latency_ms"),
            queue_wait_ms: registry.histogram("queue_wait_ms"),
            infer_ms: registry.histogram("infer_ms"),
            batch_size: registry.histogram("batch_size"),
            bank_hits: registry.counter("bank_hits"),
            bank_builds: registry.counter("bank_builds"),
            bank_evictions: registry.counter("bank_evictions"),
            bank_build_wall_ms: registry.histogram("bank_build_wall_ms"),
            pool_batches: registry.counter("pool_batches"),
            pool_batch_wall_ms: registry.histogram("pool_batch_wall_ms"),
        }
    }
}

/// Live telemetry state of one serving device.
pub(crate) struct DeviceTelemetry {
    level: TelemetryLevel,
    registry: MetricRegistry,
    pub(crate) shard: MetricShard,
    pub(crate) ids: DeviceMetricIds,
    pub(crate) clock: Arc<dyn Clock>,
    trace: Option<TraceRecorder>,
    audit: Option<DecisionAudit>,
    /// Cost-model latency prediction made at admission, keyed by request id;
    /// entries are removed on completion or drop, so the map is bounded by
    /// the scheduler's queue dynamics. `Full` level only.
    pending_predictions: HashMap<u64, f64, BuildHasherDefault<IdHasher>>,
    /// Live series + alerting, scraped once per governor window. `Full`
    /// level only.
    obs: Option<ObsPlane>,
}

impl DeviceTelemetry {
    /// Builds the device's recording state, or `None` when `config.level`
    /// is [`TelemetryLevel::Off`] — the caller then skips telemetry
    /// entirely, keeping the uninstrumented hot path byte-identical to the
    /// seed behaviour.
    pub(crate) fn new(config: TelemetryConfig, clock: Arc<dyn Clock>) -> Option<Self> {
        if !config.level.counters_enabled() {
            return None;
        }
        config.validate().expect("invalid telemetry configuration");
        let mut registry = MetricRegistry::new();
        let ids = DeviceMetricIds::register(&mut registry);
        let shard = registry.shard();
        let (trace, audit, obs) = if config.level.full_enabled() {
            (
                Some(TraceRecorder::new(config.trace_capacity)),
                Some(DecisionAudit::new(config.audit_capacity)),
                Some(ObsPlane::standard(
                    crate::engine::WINDOW_MS,
                    config.series_capacity,
                )),
            )
        } else {
            (None, None, None)
        };
        Some(Self {
            level: config.level,
            registry,
            shard,
            ids,
            clock,
            trace,
            audit,
            pending_predictions: HashMap::default(),
            obs,
        })
    }

    /// Whether the full level (trace + audit) is active.
    pub(crate) fn full(&self) -> bool {
        self.level.full_enabled()
    }

    /// Records a trace event (no-op below `Full`).
    pub(crate) fn trace_event(&mut self, event: TraceEvent) {
        if let Some(trace) = &mut self.trace {
            trace.record(event);
        }
    }

    /// Records a controller decision (no-op below `Full`).
    pub(crate) fn audit_decision(&mut self, record: DecisionRecord) {
        if let Some(audit) = &mut self.audit {
            audit.record(record);
        }
    }

    /// Remembers the admission-time latency prediction of a request
    /// (no-op below `Full`).
    pub(crate) fn note_prediction(&mut self, request_id: u64, predicted_ms: f64) {
        if self.full() {
            self.pending_predictions.insert(request_id, predicted_ms);
        }
    }

    /// Pops the remembered prediction for a finished request and, when
    /// `actual_ms` is given, folds the prediction-vs-actual residual into
    /// the audit. Returns the prediction (NaN when none was tracked) for
    /// the `Complete` trace event.
    pub(crate) fn settle_prediction(&mut self, request_id: u64, actual_ms: Option<f64>) -> f64 {
        let predicted = self
            .pending_predictions
            .remove(&request_id)
            .unwrap_or(f64::NAN);
        if let (Some(actual), Some(audit)) = (actual_ms, self.audit.as_mut()) {
            audit.record_residual(predicted, actual);
        }
        predicted
    }

    /// The hooks an instrumented [`crate::pool`] run needs — the clock and
    /// the pool metric ids — plus the device shard the timings fold into
    /// after the workers join (split-borrowed so both can be held at once).
    pub(crate) fn pool_view(&mut self) -> (crate::pool::PoolTelemetry<'_>, &mut MetricShard) {
        (
            crate::pool::PoolTelemetry {
                clock: self.clock.as_ref(),
                batches: self.ids.pool_batches,
                batch_wall_ms: self.ids.pool_batch_wall_ms,
            },
            &mut self.shard,
        )
    }

    /// Scrapes the device's metric shard into the observability plane as
    /// window `t_s` ending at `end_ms` (no-op below `Full`). Called once
    /// per governor window by the engine, which makes series and alert
    /// evaluation deterministic under a seed.
    pub(crate) fn observe_window(&mut self, t_s: u32, end_ms: f64) {
        if let Some(obs) = &mut self.obs {
            let snapshot = self.registry.snapshot(&self.shard);
            obs.observe_window(t_s, end_ms, snapshot);
        }
    }

    /// Detaches everything recorded so far into a snapshot for the report.
    pub(crate) fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            level: self.level,
            metrics: self.registry.snapshot(&self.shard),
            trace: self.trace.as_ref().map(|t| t.events()).unwrap_or_default(),
            trace_overwritten: self.trace.as_ref().map(|t| t.overwritten()).unwrap_or(0),
            decisions: self
                .audit
                .as_ref()
                .map(|a| a.decisions())
                .unwrap_or_default(),
            decisions_overwritten: self.audit.as_ref().map(|a| a.overwritten()).unwrap_or(0),
            residuals: self
                .audit
                .as_ref()
                .map(|a| a.residuals())
                .unwrap_or_default(),
            obs: self.obs.as_ref().map(|o| o.snapshot()),
        }
    }
}

/// The fleet router's metric schema: per-device route/failover counters
/// plus fleet-wide admission totals. Also part of the DESIGN.md §9 JSONL
/// contract.
pub(crate) struct FleetTelemetry {
    registry: MetricRegistry,
    shard: MetricShard,
    pub(crate) arrivals: CounterId,
    pub(crate) unroutable: CounterId,
    /// One counter per device: requests the router placed there.
    pub(crate) routed: Vec<CounterId>,
    /// One counter per device: admissions that bounced off it (failovers).
    pub(crate) failovers: Vec<CounterId>,
    level: TelemetryLevel,
}

impl FleetTelemetry {
    /// Builds the router's recording state over `device_names`, or `None`
    /// when telemetry is off.
    pub(crate) fn new(config: TelemetryConfig, device_names: &[String]) -> Option<Self> {
        if !config.level.counters_enabled() {
            return None;
        }
        let mut registry = MetricRegistry::new();
        let arrivals = registry.counter("router_arrivals");
        let unroutable = registry.counter("router_unroutable");
        let routed = device_names
            .iter()
            .map(|name| registry.counter(&format!("routed_to:{name}")))
            .collect();
        let failovers = device_names
            .iter()
            .map(|name| registry.counter(&format!("failover_from:{name}")))
            .collect();
        let shard = registry.shard();
        Some(Self {
            registry,
            shard,
            arrivals,
            unroutable,
            routed,
            failovers,
            level: config.level,
        })
    }

    /// Adds to one of the registered counters.
    pub(crate) fn add(&mut self, id: CounterId, delta: u64) {
        self.shard.add(id, delta);
    }

    /// Detaches the router metrics into a snapshot for the fleet report.
    pub(crate) fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            level: self.level,
            metrics: self.registry.snapshot(&self.shard),
            trace: Vec::new(),
            trace_overwritten: 0,
            decisions: Vec::new(),
            decisions_overwritten: 0,
            residuals: Default::default(),
            obs: None,
        }
    }
}

/// The closed-loop client population's metric schema for chaos runs: job
/// lifecycle counters (issued/succeeded/abandoned/pending), per-attempt
/// outcome counters, and an attempts-per-job histogram. The chaos driver
/// increments these *independently* of its [`crate::chaos::ClientReport`]
/// bookkeeping so the invariant harness can reconcile the two — a
/// divergence means the driver lost track of a request. Names are part of
/// the DESIGN.md §11 JSONL contract.
pub(crate) struct ChaosTelemetry {
    registry: MetricRegistry,
    shard: MetricShard,
    pub(crate) jobs: CounterId,
    pub(crate) suppressed: CounterId,
    pub(crate) attempts: CounterId,
    pub(crate) retries: CounterId,
    pub(crate) succeeded: CounterId,
    pub(crate) abandoned: CounterId,
    pub(crate) pending_at_end: CounterId,
    pub(crate) attempt_late: CounterId,
    pub(crate) attempt_rejected: CounterId,
    pub(crate) attempt_dropped_dead: CounterId,
    pub(crate) attempt_outstanding: CounterId,
    pub(crate) attempts_per_job: HistogramId,
    level: TelemetryLevel,
}

impl ChaosTelemetry {
    /// Builds the client population's recording state, or `None` when
    /// telemetry is off.
    pub(crate) fn new(config: TelemetryConfig) -> Option<Self> {
        if !config.level.counters_enabled() {
            return None;
        }
        let mut registry = MetricRegistry::new();
        let jobs = registry.counter("client_jobs");
        let suppressed = registry.counter("client_suppressed");
        let attempts = registry.counter("client_attempts");
        let retries = registry.counter("client_retries");
        let succeeded = registry.counter("client_jobs_succeeded");
        let abandoned = registry.counter("client_jobs_abandoned");
        let pending_at_end = registry.counter("client_jobs_pending_at_end");
        let attempt_late = registry.counter("client_attempt_late");
        let attempt_rejected = registry.counter("client_attempt_rejected");
        let attempt_dropped_dead = registry.counter("client_attempt_dropped_dead");
        let attempt_outstanding = registry.counter("client_attempt_outstanding");
        let attempts_per_job = registry.histogram("client_attempts_per_job");
        let shard = registry.shard();
        Some(Self {
            registry,
            shard,
            jobs,
            suppressed,
            attempts,
            retries,
            succeeded,
            abandoned,
            pending_at_end,
            attempt_late,
            attempt_rejected,
            attempt_dropped_dead,
            attempt_outstanding,
            attempts_per_job,
            level: config.level,
        })
    }

    /// Adds to one of the registered counters.
    pub(crate) fn add(&mut self, id: CounterId, delta: u64) {
        self.shard.add(id, delta);
    }

    /// Records into the attempts-per-job histogram.
    pub(crate) fn record(&mut self, id: HistogramId, value: f64) {
        self.shard.record(id, value);
    }

    /// Detaches the client metrics into a snapshot for the chaos report.
    pub(crate) fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            level: self.level,
            metrics: self.registry.snapshot(&self.shard),
            trace: Vec::new(),
            trace_overwritten: 0,
            decisions: Vec::new(),
            decisions_overwritten: 0,
            residuals: Default::default(),
            obs: None,
        }
    }
}
