//! Deadline-aware request scheduling: bounded queue, admission control and
//! greedy micro-batching over a pool of simulated workers.
//!
//! Time is simulated: the engine advances a millisecond clock and the
//! scheduler tracks when each worker frees up. Service times come from the
//! shared [`crate::cost::CostModel`] — for a batch of one, the charged time
//! **is** the predictor's latency at the active V/F level (the property
//! test in `tests/proptest_cost.rs` pins this), and larger micro-batches
//! amortise the memory-bound fraction of an inference across requests
//! through the model's fixed-α or measured curve. The scheduler itself
//! stays model-agnostic: [`DeadlineScheduler::dispatch`] takes a
//! `batch → service time` closure, so there is exactly one place (the
//! device simulation) where the cost model is consulted.

use std::collections::VecDeque;

/// Scheduler parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Maximum queued (admitted but unstarted) requests.
    pub queue_capacity: usize,
    /// Maximum requests served in one micro-batch.
    pub max_batch: usize,
    /// Number of parallel workers (≈ cores serving inference).
    pub workers: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            max_batch: 4,
            workers: 4,
        }
    }
}

impl SchedulerConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be positive".into());
        }
        if self.max_batch == 0 {
            return Err("max_batch must be positive".into());
        }
        if self.workers == 0 {
            return Err("at least one worker is required".into());
        }
        Ok(())
    }
}

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Monotonically increasing id.
    pub id: u64,
    /// Arrival time in simulated milliseconds.
    pub arrival_ms: f64,
    /// Absolute completion deadline in simulated milliseconds.
    pub deadline_ms: f64,
}

/// Why a request was turned away at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue was full.
    QueueFull,
    /// Even an immediate dispatch could not meet the deadline.
    CertainMiss,
}

/// One served request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Request id.
    pub id: u64,
    /// Arrival time in milliseconds.
    pub arrival_ms: f64,
    /// Service start time in milliseconds.
    pub start_ms: f64,
    /// Completion time in milliseconds.
    pub finish_ms: f64,
    /// Size of the micro-batch the request rode in.
    pub batch: usize,
    /// Governor level position it was served at.
    pub level_pos: usize,
    /// Whether the completion met the request deadline.
    pub met_deadline: bool,
}

impl Completion {
    /// End-to-end latency (queueing + service) in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.finish_ms - self.arrival_ms
    }
}

/// Bounded-queue, micro-batching, deadline-aware scheduler over simulated
/// workers.
#[derive(Debug, Clone)]
pub struct DeadlineScheduler {
    config: SchedulerConfig,
    queue: VecDeque<Request>,
    worker_free_at_ms: Vec<f64>,
    rejected_queue_full: u64,
    rejected_certain_miss: u64,
}

impl DeadlineScheduler {
    /// Creates an idle scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: SchedulerConfig) -> Self {
        config.validate().expect("invalid scheduler configuration");
        Self {
            worker_free_at_ms: vec![0.0; config.workers],
            config,
            queue: VecDeque::new(),
            rejected_queue_full: 0,
            rejected_certain_miss: 0,
        }
    }

    /// Currently queued requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of simulated workers.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Bound on queued (admitted but unstarted) requests.
    pub fn queue_capacity(&self) -> usize {
        self.config.queue_capacity
    }

    /// Requests rejected because the queue was full.
    pub fn rejected_queue_full(&self) -> u64 {
        self.rejected_queue_full
    }

    /// Requests rejected because they could not possibly meet their deadline.
    pub fn rejected_certain_miss(&self) -> u64 {
        self.rejected_certain_miss
    }

    /// Earliest time any worker frees up.
    pub fn earliest_free_ms(&self) -> f64 {
        self.worker_free_at_ms
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Blocks every worker until at least `until_ms` (used to charge
    /// pattern-set switch time to the serving pipeline).
    pub fn block_workers_until(&mut self, until_ms: f64) {
        for free_at in &mut self.worker_free_at_ms {
            *free_at = free_at.max(until_ms);
        }
    }

    /// Admission control: accepts the request into the bounded queue or
    /// rejects it. `service_ms(batch)` is the engine's service-time estimate
    /// for a micro-batch at the active level — the same closure
    /// [`DeadlineScheduler::dispatch`] will be driven with.
    ///
    /// The certain-miss check runs the request through
    /// [`DeadlineScheduler::predicted_finish_ms`], which replays the whole
    /// backlog (batch formation included) instead of only asking when the
    /// first worker frees up. The old backlog-blind estimate
    /// (`earliest_free_ms().max(arrival)`) was systematically optimistic
    /// under queueing: every request already admitted but not yet dispatched
    /// was invisible to it, so requests that could not possibly meet their
    /// deadline were admitted and later counted as misses instead of being
    /// rejected up front.
    ///
    /// On admission, returns the predicted completion time the certain-miss
    /// check was made against, so callers (the Full-level decision audit)
    /// can reuse it instead of replaying the backlog a second time.
    ///
    /// # Errors
    ///
    /// Returns the [`RejectReason`] when the request is turned away.
    pub fn submit<F: Fn(usize) -> f64>(
        &mut self,
        request: Request,
        service_ms: F,
    ) -> Result<f64, RejectReason> {
        if self.queue.len() >= self.config.queue_capacity {
            self.rejected_queue_full += 1;
            return Err(RejectReason::QueueFull);
        }
        let predicted_finish_ms = self.predicted_finish_ms(request.arrival_ms, &service_ms);
        if predicted_finish_ms > request.deadline_ms {
            self.rejected_certain_miss += 1;
            return Err(RejectReason::CertainMiss);
        }
        self.queue.push_back(request);
        Ok(predicted_finish_ms)
    }

    /// Predicted completion time of a request arriving at `arrival_ms`,
    /// accounting for every request already queued ahead of it: the queued
    /// work is replayed across the workers with the same greedy
    /// micro-batching [`DeadlineScheduler::dispatch`] uses (least-loaded
    /// worker, batches fill with already-arrived requests up to
    /// `max_batch`), and the newcomer's predicted batch rides at the back.
    /// The estimate assumes continuous dispatching and no further arrivals —
    /// requests admitted later can still grow the newcomer's batch, so this
    /// is a lower bound, but unlike the bare `earliest_free_ms()` it can
    /// never ignore the backlog.
    pub fn predicted_finish_ms<F: Fn(usize) -> f64>(&self, arrival_ms: f64, service_ms: &F) -> f64 {
        // arrival time of the k-th pending request, with the newcomer
        // appended at the back of the queue
        let pending = self.queue.len() + 1;
        let arrival = |k: usize| {
            if k < self.queue.len() {
                self.queue[k].arrival_ms
            } else {
                arrival_ms
            }
        };
        let mut free = self.worker_free_at_ms.clone();
        let mut next = 0usize;
        loop {
            let worker = free
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("at least one worker");
            let start = free[worker].max(arrival(next));
            let first = next;
            while next - first < self.config.max_batch && next < pending && arrival(next) <= start {
                next += 1;
            }
            let service = service_ms(next - first);
            debug_assert!(
                service.is_finite() && service >= 0.0,
                "service estimate for batch {} must be finite and non-negative, got {service}",
                next - first
            );
            if next == pending {
                // the newcomer rides in this batch
                return start + service;
            }
            free[worker] = start + service;
        }
    }

    /// Dispatches queued requests whose service can start before `until_ms`,
    /// forming greedy micro-batches: when a worker frees up it grabs every
    /// request that has already arrived, up to `max_batch`.
    ///
    /// `service_ms(batch)` converts a batch size into a service time at the
    /// active level; `level_pos` is recorded on the completions.
    pub fn dispatch<F: Fn(usize) -> f64>(
        &mut self,
        until_ms: f64,
        level_pos: usize,
        service_ms: F,
    ) -> Vec<Completion> {
        let mut completions = Vec::new();
        while let Some(head) = self.queue.front().copied() {
            // the least-loaded worker takes the next batch; total_cmp gives
            // a total order, so a NaN free-time (which the service-time
            // guard below should make impossible) can never scramble the
            // selection the way partial_cmp-with-Equal-fallback could
            let worker = self
                .worker_free_at_ms
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("at least one worker");
            let start = self.worker_free_at_ms[worker].max(head.arrival_ms);
            if start >= until_ms {
                break;
            }
            let mut batch = Vec::new();
            while batch.len() < self.config.max_batch {
                match self.queue.front() {
                    Some(r) if r.arrival_ms <= start => {
                        batch.push(self.queue.pop_front().expect("front checked"));
                    }
                    _ => break,
                }
            }
            let service = service_ms(batch.len());
            // a NaN or negative service time (a miscalibrated cost model)
            // would silently corrupt `worker_free_at_ms` for the rest of
            // the run: every later `max`/`min` comparison against NaN is
            // false, so the poisoned worker looks permanently free
            debug_assert!(
                service.is_finite() && service >= 0.0,
                "service time for batch {} must be finite and non-negative, got {service}",
                batch.len()
            );
            let finish = start + service;
            self.worker_free_at_ms[worker] = finish;
            for request in batch.iter() {
                completions.push(Completion {
                    id: request.id,
                    arrival_ms: request.arrival_ms,
                    start_ms: start,
                    finish_ms: finish,
                    batch: batch.len(),
                    level_pos,
                    met_deadline: finish <= request.deadline_ms,
                });
            }
        }
        completions
    }

    /// Drops every queued request (device off); returns how many were
    /// dropped.
    pub fn drop_all(&mut self) -> u64 {
        self.drain_queue().len() as u64
    }

    /// Drops every queued request and hands them back, so the caller can
    /// trace each drop with its request id.
    pub fn drain_queue(&mut self) -> Vec<Request> {
        self.queue.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler(workers: usize, max_batch: usize, capacity: usize) -> DeadlineScheduler {
        DeadlineScheduler::new(SchedulerConfig {
            queue_capacity: capacity,
            max_batch,
            workers,
        })
    }

    fn request(id: u64, arrival_ms: f64, deadline_ms: f64) -> Request {
        Request {
            id,
            arrival_ms,
            deadline_ms,
        }
    }

    #[test]
    fn single_request_is_served_at_predicted_latency() {
        let mut s = scheduler(2, 4, 8);
        s.submit(request(1, 10.0, 500.0), |b| 100.0 * b as f64)
            .unwrap();
        let done = s.dispatch(1_000.0, 1, |b| 100.0 * b as f64);
        assert_eq!(done.len(), 1);
        let c = done[0];
        assert_eq!(c.start_ms, 10.0);
        assert_eq!(c.finish_ms, 110.0);
        assert!((c.latency_ms() - 100.0).abs() < 1e-12);
        assert!(c.met_deadline);
        assert_eq!(c.level_pos, 1);
    }

    #[test]
    fn queue_bound_and_certain_miss_admission() {
        let mut s = scheduler(1, 1, 2);
        s.submit(request(1, 0.0, 1_000.0), |_| 100.0).unwrap();
        s.submit(request(2, 0.0, 1_000.0), |_| 100.0).unwrap();
        assert_eq!(
            s.submit(request(3, 0.0, 1_000.0), |_| 100.0),
            Err(RejectReason::QueueFull)
        );
        assert_eq!(s.rejected_queue_full(), 1);
        let mut s = scheduler(1, 1, 8);
        assert_eq!(
            s.submit(request(1, 0.0, 50.0), |_| 100.0),
            Err(RejectReason::CertainMiss)
        );
        assert_eq!(s.rejected_certain_miss(), 1);
    }

    #[test]
    fn burst_forms_micro_batches_up_to_the_cap() {
        let mut s = scheduler(1, 3, 16);
        for id in 0..5 {
            s.submit(request(id, 0.0, 10_000.0), |_| 50.0).unwrap();
        }
        let done = s.dispatch(10_000.0, 0, |b| 50.0 + 10.0 * b as f64);
        assert_eq!(done.len(), 5);
        assert_eq!(done[0].batch, 3, "first batch fills to max_batch");
        assert_eq!(done[3].batch, 2, "remainder rides in a second batch");
        assert!(done[3].start_ms >= done[0].finish_ms);
    }

    #[test]
    fn workers_serve_in_parallel() {
        let mut s = scheduler(2, 1, 16);
        s.submit(request(1, 0.0, 1_000.0), |_| 100.0).unwrap();
        s.submit(request(2, 0.0, 1_000.0), |_| 100.0).unwrap();
        let done = s.dispatch(1_000.0, 0, |_| 100.0);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].start_ms, 0.0);
        assert_eq!(done[1].start_ms, 0.0, "second worker starts concurrently");
    }

    #[test]
    fn dispatch_stops_at_the_window_edge() {
        let mut s = scheduler(1, 1, 16);
        s.submit(request(1, 0.0, 10_000.0), |_| 100.0).unwrap();
        s.submit(request(2, 950.0, 10_000.0), |_| 100.0).unwrap();
        let done = s.dispatch(1_000.0, 0, |_| 100.0);
        assert_eq!(done.len(), 2, "second starts at 950 < 1000");
        let mut s = scheduler(1, 1, 16);
        s.submit(request(1, 0.0, 10_000.0), |_| 100.0).unwrap();
        s.submit(request(2, 1_100.0, 10_000.0), |_| 100.0).unwrap();
        let done = s.dispatch(1_000.0, 0, |_| 100.0);
        assert_eq!(done.len(), 1, "arrival beyond the window stays queued");
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn switch_blocking_delays_starts() {
        let mut s = scheduler(2, 4, 16);
        s.block_workers_until(500.0);
        s.submit(request(1, 0.0, 10_000.0), |_| 100.0).unwrap();
        let done = s.dispatch(10_000.0, 0, |_| 100.0);
        assert_eq!(done[0].start_ms, 500.0);
    }

    /// Regression test for the backlog-blind admission bug: with four
    /// 100 ms requests queued on a single un-dispatched worker, the old
    /// estimate `earliest_free_ms().max(arrival) + service(1)` saw an
    /// idle worker and predicted a 100 ms finish — admitting a newcomer
    /// with a 250 ms budget that in reality completes at 500 ms and can
    /// only miss. The backlog-aware estimator rejects it up front.
    #[test]
    fn admission_sees_queued_backlog() {
        let service = |_: usize| 100.0;
        let mut s = scheduler(1, 1, 16);
        for id in 0..4 {
            s.submit(request(id, 0.0, 10_000.0), service).unwrap();
        }
        let newcomer = request(99, 0.0, 250.0);
        let old_estimate = s.earliest_free_ms().max(newcomer.arrival_ms) + service(1);
        assert!(
            old_estimate <= newcomer.deadline_ms,
            "the backlog-blind estimate ({old_estimate} ms) wrongly admits"
        );
        assert!(
            (s.predicted_finish_ms(newcomer.arrival_ms, &service) - 500.0).abs() < 1e-9,
            "replaying 4 queued requests puts the newcomer's finish at 500 ms"
        );
        assert_eq!(
            s.submit(newcomer, service),
            Err(RejectReason::CertainMiss),
            "backlog-aware admission must reject what the old check admitted"
        );
        // ground truth: dispatching the backlog confirms the 500 ms finish
        let done = s.dispatch(10_000.0, 0, service);
        assert_eq!(done.last().unwrap().finish_ms, 400.0);
    }

    /// The backlog replay mirrors dispatch's greedy batching: queued
    /// requests amortise into micro-batches, so the estimate stays exact
    /// (not pessimistic) when batching would compress the backlog.
    #[test]
    fn backlog_estimate_is_batch_aware() {
        let service = |b: usize| 60.0 + 20.0 * b as f64;
        let mut s = scheduler(1, 4, 16);
        for id in 0..4 {
            s.submit(request(id, 0.0, 10_000.0), service).unwrap();
        }
        // 4 queued + newcomer: one batch of 4 (140 ms), newcomer alone after
        let predicted = s.predicted_finish_ms(0.0, &service);
        assert!((predicted - (140.0 + 80.0)).abs() < 1e-9);
        let done = s.dispatch(10_000.0, 0, service);
        assert_eq!(done.last().unwrap().finish_ms, 140.0);
    }

    /// With an empty queue the backlog-aware estimator degenerates to the
    /// old formula exactly — idle-path admission behaviour is unchanged.
    #[test]
    fn empty_queue_estimate_matches_old_formula() {
        let service = |_: usize| 37.5;
        let mut s = scheduler(2, 4, 8);
        s.block_workers_until(120.0);
        let old = s.earliest_free_ms().max(40.0) + service(1);
        assert_eq!(s.predicted_finish_ms(40.0, &service), old);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn dispatch_rejects_nan_service_times() {
        let mut s = scheduler(2, 4, 8);
        s.submit(request(1, 0.0, 10_000.0), |_| 100.0).unwrap();
        let _ = s.dispatch(1_000.0, 0, |_| f64::NAN);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn admission_rejects_nan_service_estimates() {
        let mut s = scheduler(1, 1, 8);
        let _ = s.submit(request(1, 0.0, 10_000.0), |_| f64::NAN);
    }
}
