//! Deadline-aware request scheduling: bounded queue, admission control and
//! greedy micro-batching over a pool of simulated workers.
//!
//! Time is simulated: the engine advances a millisecond clock and the
//! scheduler tracks when each worker frees up. Service times come from the
//! shared [`crate::cost::CostModel`] — for a batch of one, the charged time
//! **is** the predictor's latency at the active V/F level (the property
//! test in `tests/proptest_cost.rs` pins this), and larger micro-batches
//! amortise the memory-bound fraction of an inference across requests
//! through the model's fixed-α or measured curve. The scheduler itself
//! stays model-agnostic: [`DeadlineScheduler::dispatch`] takes a
//! `batch → service time` closure, so there is exactly one place (the
//! device simulation) where the cost model is consulted.

use std::collections::VecDeque;

/// Scheduler parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Maximum queued (admitted but unstarted) requests.
    pub queue_capacity: usize,
    /// Maximum requests served in one micro-batch.
    pub max_batch: usize,
    /// Number of parallel workers (≈ cores serving inference).
    pub workers: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            max_batch: 4,
            workers: 4,
        }
    }
}

impl SchedulerConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be positive".into());
        }
        if self.max_batch == 0 {
            return Err("max_batch must be positive".into());
        }
        if self.workers == 0 {
            return Err("at least one worker is required".into());
        }
        Ok(())
    }
}

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Monotonically increasing id.
    pub id: u64,
    /// Arrival time in simulated milliseconds.
    pub arrival_ms: f64,
    /// Absolute completion deadline in simulated milliseconds.
    pub deadline_ms: f64,
}

/// Why a request was turned away at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue was full.
    QueueFull,
    /// Even an immediate dispatch could not meet the deadline.
    CertainMiss,
}

/// One served request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Request id.
    pub id: u64,
    /// Arrival time in milliseconds.
    pub arrival_ms: f64,
    /// Service start time in milliseconds.
    pub start_ms: f64,
    /// Completion time in milliseconds.
    pub finish_ms: f64,
    /// Size of the micro-batch the request rode in.
    pub batch: usize,
    /// Governor level position it was served at.
    pub level_pos: usize,
    /// Whether the completion met the request deadline.
    pub met_deadline: bool,
}

impl Completion {
    /// End-to-end latency (queueing + service) in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.finish_ms - self.arrival_ms
    }
}

/// Bounded-queue, micro-batching, deadline-aware scheduler over simulated
/// workers.
#[derive(Debug, Clone)]
pub struct DeadlineScheduler {
    config: SchedulerConfig,
    queue: VecDeque<Request>,
    worker_free_at_ms: Vec<f64>,
    rejected_queue_full: u64,
    rejected_certain_miss: u64,
}

impl DeadlineScheduler {
    /// Creates an idle scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: SchedulerConfig) -> Self {
        config.validate().expect("invalid scheduler configuration");
        Self {
            worker_free_at_ms: vec![0.0; config.workers],
            config,
            queue: VecDeque::new(),
            rejected_queue_full: 0,
            rejected_certain_miss: 0,
        }
    }

    /// Currently queued requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of simulated workers.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Bound on queued (admitted but unstarted) requests.
    pub fn queue_capacity(&self) -> usize {
        self.config.queue_capacity
    }

    /// Requests rejected because the queue was full.
    pub fn rejected_queue_full(&self) -> u64 {
        self.rejected_queue_full
    }

    /// Requests rejected because they could not possibly meet their deadline.
    pub fn rejected_certain_miss(&self) -> u64 {
        self.rejected_certain_miss
    }

    /// Earliest time any worker frees up.
    pub fn earliest_free_ms(&self) -> f64 {
        self.worker_free_at_ms
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Blocks every worker until at least `until_ms` (used to charge
    /// pattern-set switch time to the serving pipeline).
    pub fn block_workers_until(&mut self, until_ms: f64) {
        for free_at in &mut self.worker_free_at_ms {
            *free_at = free_at.max(until_ms);
        }
    }

    /// Admission control: accepts the request into the bounded queue or
    /// rejects it. `service_est_ms` is the engine's estimate of a
    /// single-request service at the active level.
    ///
    /// # Errors
    ///
    /// Returns the [`RejectReason`] when the request is turned away.
    pub fn submit(&mut self, request: Request, service_est_ms: f64) -> Result<(), RejectReason> {
        if self.queue.len() >= self.config.queue_capacity {
            self.rejected_queue_full += 1;
            return Err(RejectReason::QueueFull);
        }
        let earliest_start = self.earliest_free_ms().max(request.arrival_ms);
        if earliest_start + service_est_ms > request.deadline_ms {
            self.rejected_certain_miss += 1;
            return Err(RejectReason::CertainMiss);
        }
        self.queue.push_back(request);
        Ok(())
    }

    /// Dispatches queued requests whose service can start before `until_ms`,
    /// forming greedy micro-batches: when a worker frees up it grabs every
    /// request that has already arrived, up to `max_batch`.
    ///
    /// `service_ms(batch)` converts a batch size into a service time at the
    /// active level; `level_pos` is recorded on the completions.
    pub fn dispatch<F: Fn(usize) -> f64>(
        &mut self,
        until_ms: f64,
        level_pos: usize,
        service_ms: F,
    ) -> Vec<Completion> {
        let mut completions = Vec::new();
        while let Some(head) = self.queue.front().copied() {
            // the least-loaded worker takes the next batch
            let worker = self
                .worker_free_at_ms
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .expect("at least one worker");
            let start = self.worker_free_at_ms[worker].max(head.arrival_ms);
            if start >= until_ms {
                break;
            }
            let mut batch = Vec::new();
            while batch.len() < self.config.max_batch {
                match self.queue.front() {
                    Some(r) if r.arrival_ms <= start => {
                        batch.push(self.queue.pop_front().expect("front checked"));
                    }
                    _ => break,
                }
            }
            let service = service_ms(batch.len());
            let finish = start + service;
            self.worker_free_at_ms[worker] = finish;
            for request in batch.iter() {
                completions.push(Completion {
                    id: request.id,
                    arrival_ms: request.arrival_ms,
                    start_ms: start,
                    finish_ms: finish,
                    batch: batch.len(),
                    level_pos,
                    met_deadline: finish <= request.deadline_ms,
                });
            }
        }
        completions
    }

    /// Drops every queued request (device off); returns how many were
    /// dropped.
    pub fn drop_all(&mut self) -> u64 {
        self.drain_queue().len() as u64
    }

    /// Drops every queued request and hands them back, so the caller can
    /// trace each drop with its request id.
    pub fn drain_queue(&mut self) -> Vec<Request> {
        self.queue.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler(workers: usize, max_batch: usize, capacity: usize) -> DeadlineScheduler {
        DeadlineScheduler::new(SchedulerConfig {
            queue_capacity: capacity,
            max_batch,
            workers,
        })
    }

    fn request(id: u64, arrival_ms: f64, deadline_ms: f64) -> Request {
        Request {
            id,
            arrival_ms,
            deadline_ms,
        }
    }

    #[test]
    fn single_request_is_served_at_predicted_latency() {
        let mut s = scheduler(2, 4, 8);
        s.submit(request(1, 10.0, 500.0), 100.0).unwrap();
        let done = s.dispatch(1_000.0, 1, |b| 100.0 * b as f64);
        assert_eq!(done.len(), 1);
        let c = done[0];
        assert_eq!(c.start_ms, 10.0);
        assert_eq!(c.finish_ms, 110.0);
        assert!((c.latency_ms() - 100.0).abs() < 1e-12);
        assert!(c.met_deadline);
        assert_eq!(c.level_pos, 1);
    }

    #[test]
    fn queue_bound_and_certain_miss_admission() {
        let mut s = scheduler(1, 1, 2);
        s.submit(request(1, 0.0, 1_000.0), 100.0).unwrap();
        s.submit(request(2, 0.0, 1_000.0), 100.0).unwrap();
        assert_eq!(
            s.submit(request(3, 0.0, 1_000.0), 100.0),
            Err(RejectReason::QueueFull)
        );
        assert_eq!(s.rejected_queue_full(), 1);
        let mut s = scheduler(1, 1, 8);
        assert_eq!(
            s.submit(request(1, 0.0, 50.0), 100.0),
            Err(RejectReason::CertainMiss)
        );
        assert_eq!(s.rejected_certain_miss(), 1);
    }

    #[test]
    fn burst_forms_micro_batches_up_to_the_cap() {
        let mut s = scheduler(1, 3, 16);
        for id in 0..5 {
            s.submit(request(id, 0.0, 10_000.0), 50.0).unwrap();
        }
        let done = s.dispatch(10_000.0, 0, |b| 50.0 + 10.0 * b as f64);
        assert_eq!(done.len(), 5);
        assert_eq!(done[0].batch, 3, "first batch fills to max_batch");
        assert_eq!(done[3].batch, 2, "remainder rides in a second batch");
        assert!(done[3].start_ms >= done[0].finish_ms);
    }

    #[test]
    fn workers_serve_in_parallel() {
        let mut s = scheduler(2, 1, 16);
        s.submit(request(1, 0.0, 1_000.0), 100.0).unwrap();
        s.submit(request(2, 0.0, 1_000.0), 100.0).unwrap();
        let done = s.dispatch(1_000.0, 0, |_| 100.0);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].start_ms, 0.0);
        assert_eq!(done[1].start_ms, 0.0, "second worker starts concurrently");
    }

    #[test]
    fn dispatch_stops_at_the_window_edge() {
        let mut s = scheduler(1, 1, 16);
        s.submit(request(1, 0.0, 10_000.0), 100.0).unwrap();
        s.submit(request(2, 950.0, 10_000.0), 100.0).unwrap();
        let done = s.dispatch(1_000.0, 0, |_| 100.0);
        assert_eq!(done.len(), 2, "second starts at 950 < 1000");
        let mut s = scheduler(1, 1, 16);
        s.submit(request(1, 0.0, 10_000.0), 100.0).unwrap();
        s.submit(request(2, 1_100.0, 10_000.0), 100.0).unwrap();
        let done = s.dispatch(1_000.0, 0, |_| 100.0);
        assert_eq!(done.len(), 1, "arrival beyond the window stays queued");
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn switch_blocking_delays_starts() {
        let mut s = scheduler(2, 4, 16);
        s.block_workers_until(500.0);
        s.submit(request(1, 0.0, 10_000.0), 100.0).unwrap();
        let done = s.dispatch(10_000.0, 0, |_| 100.0);
        assert_eq!(done[0].start_ms, 500.0);
    }
}
