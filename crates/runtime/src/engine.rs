//! The serving engine: plays a [`Scenario`] against the model bank, the
//! battery-aware controller and the deadline scheduler, producing a
//! [`ServeReport`].
//!
//! The loop advances in one-second windows of simulated time. At each
//! boundary it reads telemetry (battery state of charge, thermal cap),
//! lets the [`RuntimeController`] pick a level, performs the pattern-set
//! switch when the level changed — charging [`SwitchCost::time_ms`] to the
//! workers and its memory traffic to the battery — then admits and
//! dispatches that window's arrivals. Dispatched micro-batches are also
//! replayed as real sparse inference on the [`crate::pool`] worker pool.

use crate::bank::ModelBank;
use crate::controller::{HysteresisConfig, RuntimeController, Telemetry};
use crate::cost::{Analytic, CostConfig, CostModel, LatencyModel};
use crate::pool;
use crate::report::{ServeReport, WindowReport};
use crate::scenario::Scenario;
use crate::scheduler::{DeadlineScheduler, RejectReason, Request, SchedulerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rt3_core::{Rt3Config, SearchOutcome};
use rt3_hardware::{Battery, DrainRateTracker, MemoryModel, PowerModel, VfLevel};
use rt3_pruning::PatternSpace;
use rt3_transformer::Model;
use std::sync::Arc;

/// Length of one simulation window in (simulated) seconds; scenario rates
/// are per-second, so power (W) converts to energy (J) via this factor.
pub(crate) const WINDOW_S: f64 = 1.0;
/// Length of one simulation window in milliseconds.
pub(crate) const WINDOW_MS: f64 = WINDOW_S * 1_000.0;

/// How the engine picks V/F levels at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimePolicy {
    /// Battery-aware reconfiguration: follow the governor with hysteresis
    /// and switch pattern sets alongside the level (the paper's approach).
    Adaptive,
    /// No reconfiguration: stay at one governor level position with its
    /// banked model for the whole trace (the E1-style baseline).
    FixedLevel(usize),
}

impl RuntimePolicy {
    /// Report label.
    pub fn label(&self, config: &Rt3Config) -> String {
        match *self {
            RuntimePolicy::Adaptive => "adaptive".to_string(),
            RuntimePolicy::FixedLevel(pos) => {
                let index = config
                    .governor
                    .levels()
                    .get(pos)
                    .map(|l| l.index)
                    .unwrap_or(pos);
                format!("fixed-l{index}")
            }
        }
    }
}

/// Serving-engine parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Battery capacity for the trace, joules.
    pub battery_capacity_j: f64,
    /// Per-request deadline: arrival + this budget, milliseconds. Should be
    /// a small multiple of the timing constraint to absorb queueing.
    pub deadline_budget_ms: f64,
    /// Scheduler parameters.
    pub scheduler: SchedulerConfig,
    /// Controller hysteresis.
    pub hysteresis: HysteresisConfig,
    /// Shared cost-model configuration (batch amortisation) used to build
    /// the default [`Analytic`] model; swap the whole model with
    /// [`ServeEngine::set_cost_model`].
    pub cost: CostConfig,
    /// Level-selection policy.
    pub policy: RuntimePolicy,
    /// Replay every dispatched micro-batch as real sparse inference on the
    /// worker pool (disable for pure-simulation parameter sweeps).
    pub real_inference: bool,
    /// Traffic seed.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            battery_capacity_j: 60.0,
            deadline_budget_ms: 400.0,
            scheduler: SchedulerConfig::default(),
            hysteresis: HysteresisConfig::default(),
            cost: CostConfig::default(),
            policy: RuntimePolicy::Adaptive,
            real_inference: true,
            seed: 0x7233,
        }
    }
}

impl ServeConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.battery_capacity_j > 0.0 && self.battery_capacity_j.is_finite()) {
            return Err("battery_capacity_j must be positive and finite".into());
        }
        if self.deadline_budget_ms <= 0.0 || self.deadline_budget_ms.is_nan() {
            return Err("deadline_budget_ms must be positive".into());
        }
        self.cost.validate()?;
        self.scheduler.validate()?;
        self.hysteresis.validate()?;
        Ok(())
    }
}

/// The online serving engine.
pub struct ServeEngine<'m, M: Model> {
    /// Moved into the per-run [`DeviceSim`] and restored afterwards, so the
    /// bank stays warm across runs; always `Some` between calls.
    bank: Option<ModelBank<'m, M>>,
    rt3: Rt3Config,
    cost: Arc<dyn CostModel>,
    power: PowerModel,
    config: ServeConfig,
}

impl<'m, M: Model> ServeEngine<'m, M> {
    /// Builds an engine from the offline artifacts: the live model, the
    /// Level-1 backbone masks, the Level-2 pattern space and the search's
    /// best solution.
    ///
    /// # Panics
    ///
    /// Panics if the search outcome has no feasible best solution, the
    /// action count differs from the governor's level count, or the serve
    /// configuration is invalid.
    pub fn new(
        model: &'m M,
        backbone_masks: rt3_transformer::MaskSet,
        space: &PatternSpace,
        outcome: &SearchOutcome,
        rt3: Rt3Config,
        config: ServeConfig,
    ) -> Self {
        config.validate().expect("invalid serve configuration");
        let best = outcome
            .best
            .as_ref()
            .expect("search outcome has no feasible solution to serve");
        assert_eq!(
            best.actions.len(),
            rt3.governor.levels().len(),
            "one action per governor level is required"
        );
        if let RuntimePolicy::FixedLevel(pos) = config.policy {
            assert!(
                pos < rt3.governor.levels().len(),
                "fixed level position {pos} outside the governor's {} levels",
                rt3.governor.levels().len()
            );
        }
        let bank = ModelBank::new(
            model,
            backbone_masks,
            space,
            &best.actions,
            MemoryModel::odroid_xu3(),
            rt3.governor.levels().len(),
        );
        let cost = Arc::new(Analytic::new(
            LatencyModel {
                predictor: rt3.predictor,
                workload_config: rt3.workload_config.clone(),
                seq_len: rt3.seq_len,
            },
            config.cost,
        ));
        Self {
            bank: Some(bank),
            rt3,
            cost,
            power: PowerModel::cortex_a7(),
            config,
        }
    }

    /// The model bank (for inspection).
    pub fn bank(&self) -> &ModelBank<'m, M> {
        self.bank.as_ref().expect("bank is restored after each run")
    }

    /// The cost model used for deadline accounting and admission estimates.
    pub fn cost_model(&self) -> &Arc<dyn CostModel> {
        &self.cost
    }

    /// Replaces the cost model (e.g. with a [`crate::cost::Calibrated`]
    /// model from a [`crate::cost::calibrate`] pass); subsequent runs use
    /// it for every prediction.
    pub fn set_cost_model(&mut self, cost: Arc<dyn CostModel>) {
        self.cost = cost;
    }

    /// Single-request service time at a governor level position, using the
    /// *achieved* sparsity of the banked variant.
    pub fn level_latency_ms(&mut self, level_pos: usize) -> f64 {
        let bank = self.bank.as_mut().expect("bank is restored after each run");
        let sparsity = bank.get(level_pos).sparsity;
        let level = self.rt3.governor.levels()[level_pos];
        self.cost.base_latency_ms(sparsity, &level)
    }

    /// Plays `scenario` to completion and reports the outcome.
    pub fn run(&mut self, scenario: &Scenario) -> ServeReport {
        let mut device = DeviceSim::new(
            self.bank.take().expect("bank is restored after each run"),
            RuntimeController::new(self.rt3.governor.clone(), self.config.hysteresis),
            DeadlineScheduler::new(self.config.scheduler),
            Battery::new(self.config.battery_capacity_j),
            self.config.policy,
            Arc::clone(&self.cost),
            self.power,
            self.rt3.governor.levels().to_vec(),
            self.config.deadline_budget_ms,
            self.config.real_inference,
            scenario.duration_s(),
        );
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut next_id = 0u64;

        for t_s in 0..scenario.duration_s() {
            let now_ms = t_s as f64 * WINDOW_MS;
            let window_end_ms = now_ms + WINDOW_MS;

            let serving = device.begin_window(
                t_s,
                now_ms,
                scenario.battery_cliff(t_s),
                scenario.charge_w(t_s) * WINDOW_S,
                scenario.thermal_cap(t_s),
            );
            let arrival_offsets = scenario.arrivals_in_second(t_s, &mut rng);

            if !serving {
                device.record_dead_window(t_s, arrival_offsets.len() as u64);
                continue;
            }

            let mut rejected_window = 0u64;
            for offset in &arrival_offsets {
                let arrival_ms = now_ms + offset;
                let request = Request {
                    id: next_id,
                    arrival_ms,
                    deadline_ms: arrival_ms + self.config.deadline_budget_ms,
                };
                next_id += 1;
                if device.try_admit(request).is_err() {
                    rejected_window += 1;
                }
            }

            device.end_window(
                t_s,
                window_end_ms,
                arrival_offsets.len() as u64,
                rejected_window,
                scenario.background_w(t_s) * WINDOW_S,
            );
        }

        let (report, bank) = device.into_report(
            scenario.name().to_string(),
            self.config.policy.label(&self.rt3),
        );
        self.bank = Some(bank);
        report
    }
}

/// One simulated device stepped window-by-window: its battery, controller,
/// scheduler and model bank, plus the serve-report accumulators.
///
/// [`ServeEngine::run`] drives a single `DeviceSim` from a [`Scenario`];
/// [`crate::Fleet`] drives several of them from a
/// [`crate::FleetScenario`], with arrivals assigned by the router instead of
/// taken straight from the trace.
pub(crate) struct DeviceSim<'m, M: Model> {
    bank: ModelBank<'m, M>,
    controller: RuntimeController,
    scheduler: DeadlineScheduler,
    battery: Battery,
    policy: RuntimePolicy,
    cost: Arc<dyn CostModel>,
    power: PowerModel,
    levels: Vec<VfLevel>,
    deadline_budget_ms: f64,
    real_inference: bool,
    workers: usize,
    /// EWMA observer of the battery trajectory, one observation per window;
    /// feeds the predictive router's time-to-death score.
    drain: DrainRateTracker,
    active_level: Option<usize>,
    active_base_latency_ms: f64,
    /// Whether the current window's [`DeviceSim::begin_window`] performed a
    /// counted pattern-set switch (recorded on the window report).
    last_switched: bool,
    // report accumulators
    windows: Vec<WindowReport>,
    latencies: Vec<f64>,
    runs_per_level: Vec<u64>,
    arrivals_total: u64,
    completed: u64,
    missed: u64,
    switches: u64,
    switch_time_ms: f64,
    inference_energy_j: f64,
    background_energy_j: f64,
    died_at_s: Option<u32>,
    dropped_dead: u64,
    checksum: f64,
    real_batches: u64,
}

impl<'m, M: Model> DeviceSim<'m, M> {
    /// Builds a device around pre-constructed components. `battery` may be
    /// partially drained (fleet devices start at heterogeneous charge).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        bank: ModelBank<'m, M>,
        controller: RuntimeController,
        scheduler: DeadlineScheduler,
        battery: Battery,
        policy: RuntimePolicy,
        cost: Arc<dyn CostModel>,
        power: PowerModel,
        levels: Vec<VfLevel>,
        deadline_budget_ms: f64,
        real_inference: bool,
        duration_hint_s: u32,
    ) -> Self {
        let workers = scheduler.workers();
        let level_count = levels.len();
        Self {
            bank,
            controller,
            scheduler,
            battery,
            policy,
            cost,
            power,
            levels,
            deadline_budget_ms,
            real_inference,
            workers,
            drain: DrainRateTracker::default(),
            active_level: None,
            active_base_latency_ms: 0.0,
            last_switched: false,
            windows: Vec::with_capacity(duration_hint_s as usize),
            latencies: Vec::new(),
            runs_per_level: vec![0; level_count],
            arrivals_total: 0,
            completed: 0,
            missed: 0,
            switches: 0,
            switch_time_ms: 0.0,
            inference_energy_j: 0.0,
            background_energy_j: 0.0,
            died_at_s: None,
            dropped_dead: 0,
            checksum: 0.0,
            real_batches: 0,
        }
    }

    /// Replaces the device's cost model (fleet construction hook; must be
    /// called before the first window so cached base latencies stay
    /// consistent).
    pub(crate) fn set_cost_model(&mut self, cost: Arc<dyn CostModel>) {
        debug_assert!(
            self.active_level.is_none(),
            "cost model must be set before the first window"
        );
        self.cost = cost;
    }

    /// Whether the device's battery has died at some earlier window.
    pub(crate) fn is_dead(&self) -> bool {
        self.died_at_s.is_some()
    }

    /// Battery state of charge in `[0, 1]`.
    pub(crate) fn state_of_charge(&self) -> f64 {
        self.battery.state_of_charge()
    }

    /// Governor level position in effect for the current window.
    pub(crate) fn active_level(&self) -> Option<usize> {
        self.active_level
    }

    /// Number of governor levels the device serves.
    pub(crate) fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Currently queued (admitted but unstarted) requests.
    pub(crate) fn queue_len(&self) -> usize {
        self.scheduler.queue_len()
    }

    /// Bound on the device's request queue.
    pub(crate) fn queue_capacity(&self) -> usize {
        self.scheduler.queue_capacity()
    }

    /// Single-request latency a request admitted at `arrival_ms` is predicted
    /// to see: wait until a worker frees up, then one base-latency service at
    /// the active level.
    pub(crate) fn predicted_latency_ms(&self, arrival_ms: f64) -> f64 {
        let start = self.scheduler.earliest_free_ms().max(arrival_ms);
        (start - arrival_ms) + self.active_base_latency_ms
    }

    /// Per-request deadline budget the device was configured with.
    pub(crate) fn deadline_budget_ms(&self) -> f64 {
        self.deadline_budget_ms
    }

    /// Predicted milliseconds until this device's battery dies at its
    /// EWMA-smoothed drain rate (infinite while charging or unobserved).
    pub(crate) fn time_to_death_ms(&self) -> f64 {
        self.drain.time_to_death_ms(self.battery.remaining_j())
    }

    /// Battery events, death bookkeeping, level decision and pattern-set
    /// switch for the window starting at `t_s`. Returns `false` when the
    /// device is (now) dead; the caller must then finish the window with
    /// [`DeviceSim::record_dead_window`] instead of admitting traffic.
    pub(crate) fn begin_window(
        &mut self,
        t_s: u32,
        now_ms: f64,
        battery_cliff: Option<f64>,
        charge_j: f64,
        thermal_cap: Option<usize>,
    ) -> bool {
        // battery events occur regardless of serving state
        if let Some(drop) = battery_cliff {
            let loss = drop * self.battery.capacity_j();
            let drained = self.battery.drain(loss.min(self.battery.remaining_j()));
            debug_assert!(drained);
        }
        self.battery.charge(charge_j);
        // one drain observation per window, fed by everything since the
        // previous boundary (inference, background, switches, cliffs,
        // charging) — the predictive router reads the smoothed rate
        self.drain.observe(WINDOW_S, self.battery.remaining_j());

        if self.battery.is_empty() && self.died_at_s.is_none() {
            self.died_at_s = Some(t_s);
        }
        if self.died_at_s.is_some() {
            return false;
        }

        // 1. telemetry + level decision
        let decision = match self.policy {
            RuntimePolicy::Adaptive => self.controller.decide(Telemetry {
                now_ms,
                state_of_charge: self.battery.state_of_charge(),
                thermal_cap,
            }),
            RuntimePolicy::FixedLevel(pos) => {
                // the thermal cap is hardware-mandated even for the
                // baseline; it keeps its (dense-for-that-level) model
                let capped = thermal_cap.map_or(pos, |cap| pos.min(cap));
                crate::controller::LevelDecision {
                    level_pos: capped,
                    switched: self.active_level != Some(capped),
                }
            }
        };
        let level_pos = decision.level_pos;
        let level = self.levels[level_pos];

        // 2. pattern-set switch: charge time to the workers and traffic
        //    energy to the battery (the very first activation is a model
        //    load, not a run-time switch, and is not counted). Sparsity
        //    and base latency only change on a switch, so they are cached
        //    here rather than recomputed per window/batch.
        let counted_switch = self.active_level.is_some() && self.active_level != Some(level_pos);
        if self.active_level != Some(level_pos) {
            let cost = self.bank.switch_cost(level_pos);
            let sparsity = self.bank.get(level_pos).sparsity; // lazy build
            self.active_base_latency_ms = self.cost.base_latency_ms(sparsity, &level);
            if counted_switch {
                self.switches += 1;
                self.switch_time_ms += cost.time_ms;
                self.scheduler.block_workers_until(now_ms + cost.time_ms);
                let switch_energy = self.power.power_w(&level) * cost.time_ms / 1_000.0;
                self.inference_energy_j += switch_energy;
                if !self.battery.drain(switch_energy) {
                    self.battery.drain(self.battery.remaining_j());
                }
            }
            self.active_level = Some(level_pos);
        }
        self.last_switched = counted_switch;
        true
    }

    /// Admission control for one routed/arriving request, using the active
    /// level's base latency as the service estimate.
    ///
    /// # Errors
    ///
    /// Returns the scheduler's [`RejectReason`] when the request is turned
    /// away (bounded queue full, or the deadline is already unmeetable).
    pub(crate) fn try_admit(&mut self, request: Request) -> Result<(), RejectReason> {
        self.scheduler.submit(request, self.active_base_latency_ms)
    }

    /// Finishes a window on a dead device: queued and incoming requests are
    /// lost, and a dead window report is recorded.
    pub(crate) fn record_dead_window(&mut self, t_s: u32, arrivals: u64) {
        self.arrivals_total += arrivals;
        self.dropped_dead += self.scheduler.drop_all() + arrivals;
        self.windows.push(WindowReport {
            t_s,
            level_pos: None,
            state_of_charge: self.battery.state_of_charge(),
            arrivals,
            completed: 0,
            missed: 0,
            rejected: 0,
            switched: false,
        });
    }

    /// Dispatches, charges energy, replays real inference and records the
    /// window report for a live window started with
    /// [`DeviceSim::begin_window`].
    pub(crate) fn end_window(
        &mut self,
        t_s: u32,
        window_end_ms: f64,
        arrivals: u64,
        rejected_window: u64,
        background_j: f64,
    ) {
        self.arrivals_total += arrivals;
        let level_pos = self.active_level.expect("window began on a live device");
        let level = self.levels[level_pos];
        let base_latency = self.active_base_latency_ms;

        // 4. dispatch everything that can start inside this window, with
        //    batch service times charged by the shared cost model
        let cost = &self.cost;
        let completions = self.scheduler.dispatch(window_end_ms, level_pos, |batch| {
            cost.service_from_base_ms(level_pos, base_latency, batch)
        });

        // 5. charge inference energy: each worker is one core of the
        //    cluster, so a batch costs (cluster power / workers) × time
        let core_power_w = self.power.power_w(&level) / self.workers as f64;
        let mut window_missed = 0u64;
        for completion in &completions {
            let service_share =
                (completion.finish_ms - completion.start_ms) / completion.batch as f64;
            let energy = core_power_w * service_share / 1_000.0;
            self.inference_energy_j += energy;
            if !self.battery.drain(energy) {
                self.battery.drain(self.battery.remaining_j());
            }
            self.completed += 1;
            self.runs_per_level[completion.level_pos] += 1;
            self.latencies.push(completion.latency_ms());
            if !completion.met_deadline {
                window_missed += 1;
            }
        }
        self.missed += window_missed;
        // one pool batch per dispatched micro-batch: the scheduler pushes
        // a batch's completions consecutively and stamps each with the
        // batch size, so stepping by that size recovers the batches even
        // when several start at the same instant on different workers
        let mut batch_sizes: Vec<usize> = Vec::new();
        let mut i = 0;
        while i < completions.len() {
            let batch = completions[i].batch;
            batch_sizes.push(batch);
            i += batch;
        }

        // 6. replay the dispatched batches as real sparse inference
        if self.real_inference && !batch_sizes.is_empty() {
            let outcome = pool::run_batches(self.bank.get(level_pos), &batch_sizes, self.workers);
            self.checksum += outcome.checksum;
            self.real_batches += outcome.batches;
        }

        // 7. background drain
        self.background_energy_j += background_j;
        if !self.battery.drain(background_j) {
            self.battery.drain(self.battery.remaining_j());
        }

        self.windows.push(WindowReport {
            t_s,
            level_pos: Some(level_pos),
            state_of_charge: self.battery.state_of_charge(),
            arrivals,
            completed: completions.len() as u64,
            missed: window_missed,
            rejected: rejected_window,
            switched: self.last_switched,
        });
    }

    /// Finalises the run: drops leftover queue entries, sorts latencies and
    /// assembles the [`ServeReport`]. Returns the bank alongside so callers
    /// that own it (the single-device engine) can keep it warm across runs.
    pub(crate) fn into_report(
        mut self,
        scenario: String,
        policy: String,
    ) -> (ServeReport, ModelBank<'m, M>) {
        // requests still queued when the trace ends count as misses, but are
        // reported separately from admission rejections
        let leftover = self.scheduler.drop_all();
        self.latencies
            .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rejected =
            self.scheduler.rejected_queue_full() + self.scheduler.rejected_certain_miss();
        let report = ServeReport {
            scenario,
            policy,
            cost_model: self.cost.label().to_string(),
            windows: self.windows,
            arrivals: self.arrivals_total,
            completed: self.completed,
            missed_deadline: self.missed,
            rejected,
            dropped_dead_battery: self.dropped_dead,
            dropped_at_trace_end: leftover,
            latencies_ms: self.latencies,
            switches: self.switches,
            switch_time_ms: self.switch_time_ms,
            inference_energy_j: self.inference_energy_j,
            background_energy_j: self.background_energy_j,
            runs_per_level: self.runs_per_level,
            final_state_of_charge: self.battery.state_of_charge(),
            died_at_s: self.died_at_s,
            inference_checksum: self.checksum,
            real_batches: self.real_batches,
        };
        (report, self.bank)
    }
}
