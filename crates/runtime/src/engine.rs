//! The serving engine: plays a [`Scenario`] against the model bank, the
//! battery-aware controller and the deadline scheduler, producing a
//! [`ServeReport`].
//!
//! The loop advances in one-second windows of simulated time. At each
//! boundary it reads telemetry (battery state of charge, thermal cap),
//! lets the [`RuntimeController`] pick a level, performs the pattern-set
//! switch when the level changed — charging [`SwitchCost::time_ms`] to the
//! workers and its memory traffic to the battery — then admits and
//! dispatches that window's arrivals. Dispatched micro-batches are also
//! replayed as real sparse inference on the [`crate::pool`] worker pool.

use crate::bank::{BankStats, ModelBank};
use crate::controller::{HysteresisConfig, RuntimeController, Telemetry};
use crate::cost::{Analytic, CostConfig, CostModel, LatencyModel};
use crate::pool;
use crate::report::{ServeReport, WindowReport};
use crate::scenario::Scenario;
use crate::scheduler::{Completion, DeadlineScheduler, RejectReason, Request, SchedulerConfig};
use crate::telemetry::DeviceTelemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rt3_core::{Rt3Config, SearchOutcome};
use rt3_hardware::{Battery, DrainRateTracker, MemoryModel, PowerModel, VfLevel};
use rt3_pruning::PatternSpace;
use rt3_telemetry::{
    DecisionRecord, StreamingHistogram, TelemetryConfig, TraceEvent, TraceEventKind, WallClock,
};
use rt3_transformer::Model;
use std::sync::Arc;

/// Length of one simulation window in (simulated) seconds; scenario rates
/// are per-second, so power (W) converts to energy (J) via this factor.
pub(crate) const WINDOW_S: f64 = 1.0;
/// Length of one simulation window in milliseconds.
pub(crate) const WINDOW_MS: f64 = WINDOW_S * 1_000.0;

/// How the engine picks V/F levels at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimePolicy {
    /// Battery-aware reconfiguration: follow the governor with hysteresis
    /// and switch pattern sets alongside the level (the paper's approach).
    Adaptive,
    /// No reconfiguration: stay at one governor level position with its
    /// banked model for the whole trace (the E1-style baseline).
    FixedLevel(usize),
}

impl RuntimePolicy {
    /// Report label.
    pub fn label(&self, config: &Rt3Config) -> String {
        match *self {
            RuntimePolicy::Adaptive => "adaptive".to_string(),
            RuntimePolicy::FixedLevel(pos) => {
                let index = config
                    .governor
                    .levels()
                    .get(pos)
                    .map(|l| l.index)
                    .unwrap_or(pos);
                format!("fixed-l{index}")
            }
        }
    }
}

/// Serving-engine parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Battery capacity for the trace, joules.
    pub battery_capacity_j: f64,
    /// Per-request deadline: arrival + this budget, milliseconds. Should be
    /// a small multiple of the timing constraint to absorb queueing.
    pub deadline_budget_ms: f64,
    /// Scheduler parameters.
    pub scheduler: SchedulerConfig,
    /// Controller hysteresis.
    pub hysteresis: HysteresisConfig,
    /// Shared cost-model configuration (batch amortisation) used to build
    /// the default [`Analytic`] model; swap the whole model with
    /// [`ServeEngine::set_cost_model`].
    pub cost: CostConfig,
    /// Level-selection policy.
    pub policy: RuntimePolicy,
    /// Replay every dispatched micro-batch as real sparse inference on the
    /// worker pool (disable for pure-simulation parameter sweeps).
    pub real_inference: bool,
    /// Traffic seed.
    pub seed: u64,
    /// What the run records ([`rt3_telemetry::TelemetryLevel::Off`] by
    /// default — behaviour and output identical to an uninstrumented build).
    pub telemetry: TelemetryConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            battery_capacity_j: 60.0,
            deadline_budget_ms: 400.0,
            scheduler: SchedulerConfig::default(),
            hysteresis: HysteresisConfig::default(),
            cost: CostConfig::default(),
            policy: RuntimePolicy::Adaptive,
            real_inference: true,
            seed: 0x7233,
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.battery_capacity_j > 0.0 && self.battery_capacity_j.is_finite()) {
            return Err("battery_capacity_j must be positive and finite".into());
        }
        if self.deadline_budget_ms <= 0.0 || self.deadline_budget_ms.is_nan() {
            return Err("deadline_budget_ms must be positive".into());
        }
        self.cost.validate()?;
        self.scheduler.validate()?;
        self.hysteresis.validate()?;
        self.telemetry.validate()?;
        Ok(())
    }
}

/// The online serving engine.
pub struct ServeEngine<'m, M: Model> {
    /// Moved into the per-run [`DeviceSim`] and restored afterwards, so the
    /// bank stays warm across runs; always `Some` between calls.
    bank: Option<ModelBank<'m, M>>,
    rt3: Rt3Config,
    cost: Arc<dyn CostModel>,
    power: PowerModel,
    config: ServeConfig,
}

impl<'m, M: Model> ServeEngine<'m, M> {
    /// Builds an engine from the offline artifacts: the live model, the
    /// Level-1 backbone masks, the Level-2 pattern space and the search's
    /// best solution.
    ///
    /// # Panics
    ///
    /// Panics if the search outcome has no feasible best solution, the
    /// action count differs from the governor's level count, or the serve
    /// configuration is invalid.
    pub fn new(
        model: &'m M,
        backbone_masks: rt3_transformer::MaskSet,
        space: &PatternSpace,
        outcome: &SearchOutcome,
        rt3: Rt3Config,
        config: ServeConfig,
    ) -> Self {
        config.validate().expect("invalid serve configuration");
        let best = outcome
            .best
            .as_ref()
            .expect("search outcome has no feasible solution to serve");
        assert_eq!(
            best.actions.len(),
            rt3.governor.levels().len(),
            "one action per governor level is required"
        );
        if let RuntimePolicy::FixedLevel(pos) = config.policy {
            assert!(
                pos < rt3.governor.levels().len(),
                "fixed level position {pos} outside the governor's {} levels",
                rt3.governor.levels().len()
            );
        }
        let bank = ModelBank::new(
            model,
            backbone_masks,
            space,
            &best.actions,
            MemoryModel::odroid_xu3(),
            rt3.governor.levels().len(),
        );
        let cost = Arc::new(Analytic::new(
            LatencyModel {
                predictor: rt3.predictor,
                workload_config: rt3.workload_config.clone(),
                seq_len: rt3.seq_len,
            },
            config.cost,
        ));
        Self {
            bank: Some(bank),
            rt3,
            cost,
            power: PowerModel::cortex_a7(),
            config,
        }
    }

    /// The model bank (for inspection).
    pub fn bank(&self) -> &ModelBank<'m, M> {
        self.bank.as_ref().expect("bank is restored after each run")
    }

    /// The cost model used for deadline accounting and admission estimates.
    pub fn cost_model(&self) -> &Arc<dyn CostModel> {
        &self.cost
    }

    /// Replaces the cost model (e.g. with a [`crate::cost::Calibrated`]
    /// model from a [`crate::cost::calibrate`] pass); subsequent runs use
    /// it for every prediction.
    pub fn set_cost_model(&mut self, cost: Arc<dyn CostModel>) {
        self.cost = cost;
    }

    /// Single-request service time at a governor level position, using the
    /// *achieved* sparsity of the banked variant.
    pub fn level_latency_ms(&mut self, level_pos: usize) -> f64 {
        let bank = self.bank.as_mut().expect("bank is restored after each run");
        let sparsity = bank.get(level_pos).sparsity;
        let level = self.rt3.governor.levels()[level_pos];
        self.cost.base_latency_ms(sparsity, &level)
    }

    /// Plays `scenario` to completion and reports the outcome.
    pub fn run(&mut self, scenario: &Scenario) -> ServeReport {
        let mut device = DeviceSim::new(
            self.bank.take().expect("bank is restored after each run"),
            RuntimeController::new(self.rt3.governor.clone(), self.config.hysteresis),
            DeadlineScheduler::new(self.config.scheduler),
            Battery::new(self.config.battery_capacity_j),
            self.config.policy,
            Arc::clone(&self.cost),
            self.power,
            self.rt3.governor.levels().to_vec(),
            self.config.deadline_budget_ms,
            self.config.real_inference,
            scenario.duration_s(),
            DeviceTelemetry::new(self.config.telemetry, Arc::new(WallClock::new())),
        );
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut next_id = 0u64;

        for t_s in 0..scenario.duration_s() {
            let now_ms = t_s as f64 * WINDOW_MS;
            let window_end_ms = now_ms + WINDOW_MS;

            let serving = device.begin_window(
                t_s,
                now_ms,
                scenario.battery_cliff(t_s),
                scenario.charge_w(t_s) * WINDOW_S,
                scenario.thermal_cap(t_s),
            );
            let arrival_offsets = scenario.arrivals_in_second(t_s, &mut rng);

            if !serving {
                device.record_dead_window(t_s, arrival_offsets.len() as u64);
                continue;
            }

            let mut rejected_window = 0u64;
            for offset in &arrival_offsets {
                let arrival_ms = now_ms + offset;
                let request = Request {
                    id: next_id,
                    arrival_ms,
                    deadline_ms: arrival_ms + self.config.deadline_budget_ms,
                };
                next_id += 1;
                if device.try_admit(request).is_err() {
                    rejected_window += 1;
                }
            }

            device.end_window(
                t_s,
                window_end_ms,
                arrival_offsets.len() as u64,
                rejected_window,
                scenario.background_w(t_s) * WINDOW_S,
            );
        }

        let (report, bank) = device.into_report(
            scenario.name().to_string(),
            self.config.policy.label(&self.rt3),
        );
        self.bank = Some(bank);
        report
    }
}

/// One simulated device stepped window-by-window: its battery, controller,
/// scheduler and model bank, plus the serve-report accumulators.
///
/// [`ServeEngine::run`] drives a single `DeviceSim` from a [`Scenario`];
/// [`crate::Fleet`] drives several of them from a
/// [`crate::FleetScenario`], with arrivals assigned by the router instead of
/// taken straight from the trace.
pub(crate) struct DeviceSim<'m, M: Model> {
    bank: ModelBank<'m, M>,
    controller: RuntimeController,
    scheduler: DeadlineScheduler,
    battery: Battery,
    policy: RuntimePolicy,
    cost: Arc<dyn CostModel>,
    power: PowerModel,
    levels: Vec<VfLevel>,
    deadline_budget_ms: f64,
    real_inference: bool,
    workers: usize,
    /// EWMA observer of the battery trajectory, one observation per window;
    /// feeds the predictive router's time-to-death score.
    drain: DrainRateTracker,
    active_level: Option<usize>,
    active_base_latency_ms: f64,
    /// Whether the current window's [`DeviceSim::begin_window`] performed a
    /// counted pattern-set switch (recorded on the window report).
    last_switched: bool,
    /// Telemetry recording state (`None` when the level is `Off`, which
    /// keeps the hot path identical to an uninstrumented build).
    telemetry: Option<DeviceTelemetry>,
    /// Bank statistics already folded into the telemetry counters; the
    /// per-window delta against [`ModelBank::stats`] is what gets recorded
    /// (the bank may arrive pre-warmed from an earlier run).
    bank_stats_seen: BankStats,
    // report accumulators
    windows: Vec<WindowReport>,
    latency_hist: StreamingHistogram,
    runs_per_level: Vec<u64>,
    arrivals_total: u64,
    completed: u64,
    missed: u64,
    switches: u64,
    switch_time_ms: f64,
    inference_energy_j: f64,
    background_energy_j: f64,
    died_at_s: Option<u32>,
    dropped_dead: u64,
    checksum: f64,
    real_batches: u64,
}

impl<'m, M: Model> DeviceSim<'m, M> {
    /// Builds a device around pre-constructed components. `battery` may be
    /// partially drained (fleet devices start at heterogeneous charge).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        bank: ModelBank<'m, M>,
        controller: RuntimeController,
        scheduler: DeadlineScheduler,
        battery: Battery,
        policy: RuntimePolicy,
        cost: Arc<dyn CostModel>,
        power: PowerModel,
        levels: Vec<VfLevel>,
        deadline_budget_ms: f64,
        real_inference: bool,
        duration_hint_s: u32,
        telemetry: Option<DeviceTelemetry>,
    ) -> Self {
        let workers = scheduler.workers();
        let level_count = levels.len();
        let bank_stats_seen = bank.stats();
        Self {
            bank,
            controller,
            scheduler,
            battery,
            policy,
            cost,
            power,
            levels,
            deadline_budget_ms,
            real_inference,
            workers,
            drain: DrainRateTracker::default(),
            active_level: None,
            active_base_latency_ms: 0.0,
            last_switched: false,
            telemetry,
            bank_stats_seen,
            windows: Vec::with_capacity(duration_hint_s as usize),
            latency_hist: StreamingHistogram::new(),
            runs_per_level: vec![0; level_count],
            arrivals_total: 0,
            completed: 0,
            missed: 0,
            switches: 0,
            switch_time_ms: 0.0,
            inference_energy_j: 0.0,
            background_energy_j: 0.0,
            died_at_s: None,
            dropped_dead: 0,
            checksum: 0.0,
            real_batches: 0,
        }
    }

    /// Replaces the device's cost model (fleet construction hook; must be
    /// called before the first window so cached base latencies stay
    /// consistent).
    pub(crate) fn set_cost_model(&mut self, cost: Arc<dyn CostModel>) {
        debug_assert!(
            self.active_level.is_none(),
            "cost model must be set before the first window"
        );
        self.cost = cost;
    }

    /// Whether the device's battery has died at some earlier window.
    pub(crate) fn is_dead(&self) -> bool {
        self.died_at_s.is_some()
    }

    /// Battery state of charge in `[0, 1]`.
    pub(crate) fn state_of_charge(&self) -> f64 {
        self.battery.state_of_charge()
    }

    /// Governor level position in effect for the current window.
    pub(crate) fn active_level(&self) -> Option<usize> {
        self.active_level
    }

    /// Number of governor levels the device serves.
    pub(crate) fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Currently queued (admitted but unstarted) requests.
    pub(crate) fn queue_len(&self) -> usize {
        self.scheduler.queue_len()
    }

    /// Bound on the device's request queue.
    pub(crate) fn queue_capacity(&self) -> usize {
        self.scheduler.queue_capacity()
    }

    /// Latency a request admitted at `arrival_ms` is predicted to see:
    /// the scheduler replays the queued backlog (batch-aware, through the
    /// same cost-model closure dispatch uses) and the prediction is the
    /// newcomer's simulated completion. The previous implementation asked
    /// only for `earliest_free_ms()`, so a heavily-queued device looked
    /// exactly as fast as an idle one to the fleet router's
    /// predicted-latency term.
    pub(crate) fn predicted_latency_ms(&self, arrival_ms: f64) -> f64 {
        let finish = self
            .scheduler
            .predicted_finish_ms(arrival_ms, &self.service_estimator());
        finish - arrival_ms
    }

    /// The batch→service-time closure admission and routing predictions
    /// share with dispatch: the active level's cached base latency through
    /// the cost model's amortisation curve. Captures an `Arc` clone so the
    /// closure doesn't borrow the device (admission mutates the scheduler).
    fn service_estimator(&self) -> impl Fn(usize) -> f64 {
        let level_pos = self.active_level.unwrap_or(0);
        let base = self.active_base_latency_ms;
        let cost = Arc::clone(&self.cost);
        move |batch| cost.service_from_base_ms(level_pos, base, batch)
    }

    /// Per-request deadline budget the device was configured with.
    pub(crate) fn deadline_budget_ms(&self) -> f64 {
        self.deadline_budget_ms
    }

    /// Predicted milliseconds until this device's battery dies at its
    /// EWMA-smoothed drain rate (infinite while charging or unobserved).
    pub(crate) fn time_to_death_ms(&self) -> f64 {
        self.drain.time_to_death_ms(self.battery.remaining_j())
    }

    /// Battery events, death bookkeeping, level decision and pattern-set
    /// switch for the window starting at `t_s`. Returns `false` when the
    /// device is (now) dead; the caller must then finish the window with
    /// [`DeviceSim::record_dead_window`] instead of admitting traffic.
    pub(crate) fn begin_window(
        &mut self,
        t_s: u32,
        now_ms: f64,
        battery_cliff: Option<f64>,
        charge_j: f64,
        thermal_cap: Option<usize>,
    ) -> bool {
        // battery events occur regardless of serving state
        if let Some(drop) = battery_cliff {
            let loss = drop * self.battery.capacity_j();
            let drained = self.battery.drain(loss.min(self.battery.remaining_j()));
            debug_assert!(drained);
        }
        self.battery.charge(charge_j);
        // one drain observation per window, fed by everything since the
        // previous boundary (inference, background, switches, cliffs,
        // charging) — the predictive router reads the smoothed rate
        self.drain.observe(WINDOW_S, self.battery.remaining_j());

        if let Some(t) = &mut self.telemetry {
            t.shard
                .set(t.ids.state_of_charge, self.battery.state_of_charge());
            t.shard.set(t.ids.drain_rate_w, self.drain.drain_rate_w());
            t.shard.set(
                t.ids.time_to_death_ms,
                self.drain.time_to_death_ms(self.battery.remaining_j()),
            );
        }

        if self.battery.is_empty() && self.died_at_s.is_none() {
            self.died_at_s = Some(t_s);
        }
        if self.died_at_s.is_some() {
            return false;
        }

        // the dwell must be read *before* the decision (a switch resets it);
        // the other audit inputs are captured alongside for the record
        let audit_inputs = match &self.telemetry {
            Some(t) if t.full() => Some((
                self.controller.ms_since_last_switch(now_ms),
                self.drain.time_to_death_ms(self.battery.remaining_j()),
                self.battery.state_of_charge(),
            )),
            _ => None,
        };

        // 1. telemetry + level decision
        let decision = match self.policy {
            RuntimePolicy::Adaptive => self.controller.decide(Telemetry {
                now_ms,
                state_of_charge: self.battery.state_of_charge(),
                thermal_cap,
            }),
            RuntimePolicy::FixedLevel(pos) => {
                // the thermal cap is hardware-mandated even for the
                // baseline; it keeps its (dense-for-that-level) model
                let capped = thermal_cap.map_or(pos, |cap| pos.min(cap));
                crate::controller::LevelDecision {
                    level_pos: capped,
                    switched: self.active_level != Some(capped),
                }
            }
        };
        let level_pos = decision.level_pos;
        let level = self.levels[level_pos];

        // 2. pattern-set switch: charge time to the workers and traffic
        //    energy to the battery (the very first activation is a model
        //    load, not a run-time switch, and is not counted). Sparsity
        //    and base latency only change on a switch, so they are cached
        //    here rather than recomputed per window/batch.
        let counted_switch = self.active_level.is_some() && self.active_level != Some(level_pos);
        if self.active_level != Some(level_pos) {
            let cost = self.bank.switch_cost(level_pos);
            let build_timer = self
                .telemetry
                .as_ref()
                .map(|t| (self.bank.stats().builds, t.clock.now_ms()));
            let sparsity = self.bank.get(level_pos).sparsity; // lazy build
            if let (Some((builds_before, begin_ms)), Some(t)) =
                (build_timer, self.telemetry.as_mut())
            {
                if self.bank.stats().builds > builds_before {
                    t.shard
                        .record(t.ids.bank_build_wall_ms, t.clock.now_ms() - begin_ms);
                }
            }
            self.active_base_latency_ms = self.cost.base_latency_ms(sparsity, &level);
            if counted_switch {
                self.switches += 1;
                self.switch_time_ms += cost.time_ms;
                self.scheduler.block_workers_until(now_ms + cost.time_ms);
                let switch_energy = self.power.power_w(&level) * cost.time_ms / 1_000.0;
                self.inference_energy_j += switch_energy;
                if !self.battery.drain(switch_energy) {
                    self.battery.drain(self.battery.remaining_j());
                }
                if let Some(t) = &mut self.telemetry {
                    t.shard.add(t.ids.switches, 1);
                    t.shard.record(t.ids.switch_time_ms, cost.time_ms);
                    // device-level span: the window [now, now+cost] blocks
                    // every queued request, and the span analyzer charges
                    // the overlap to them
                    t.trace_event(TraceEvent {
                        t_ms: now_ms,
                        request_id: 0,
                        kind: TraceEventKind::Switch {
                            from_level: self.active_level.unwrap_or(level_pos),
                            to_level: level_pos,
                            duration_ms: cost.time_ms,
                        },
                    });
                }
            }
            self.active_level = Some(level_pos);
        }
        self.last_switched = counted_switch;
        if let Some(t) = &mut self.telemetry {
            t.shard.set(t.ids.active_level, level_pos as f64);
        }
        if let Some((dwell_ms, time_to_death_ms, state_of_charge)) = audit_inputs {
            // `switched` records the engine's *counted* switch (the first
            // model activation is a load, not a switch), so the audited
            // switch count reconciles exactly with the report's
            let raw_target = match self.policy {
                RuntimePolicy::Adaptive => {
                    self.controller.raw_target(state_of_charge.clamp(0.0, 1.0))
                }
                RuntimePolicy::FixedLevel(pos) => pos,
            };
            let record = DecisionRecord {
                t_ms: now_ms,
                state_of_charge,
                thermal_cap,
                raw_target,
                chosen_level: level_pos,
                switched: counted_switch,
                dwell_ms,
                time_to_death_ms,
                predicted_latency_ms: self.active_base_latency_ms,
            };
            if let Some(t) = &mut self.telemetry {
                t.audit_decision(record);
            }
        }
        true
    }

    /// Admission control for one routed/arriving request, using the active
    /// level's base latency as the service estimate.
    ///
    /// # Errors
    ///
    /// Returns the scheduler's [`RejectReason`] when the request is turned
    /// away (bounded queue full, or the deadline is already unmeetable).
    pub(crate) fn try_admit(&mut self, request: Request) -> Result<(), RejectReason> {
        let arrival_ms = request.arrival_ms;
        let result = self.scheduler.submit(request, self.service_estimator());
        if let Some(t) = &mut self.telemetry {
            match result {
                Ok(predicted_finish_ms) => {
                    // the admission-time prediction is what the residuals
                    // compare the actual completion latency against — the
                    // certain-miss check already replayed the backlog, so
                    // the audit reuses its answer instead of simulating the
                    // queue a second time
                    let predicted_ms = predicted_finish_ms - arrival_ms;
                    t.shard.add(t.ids.admitted, 1);
                    t.shard
                        .set(t.ids.queue_depth, self.scheduler.queue_len() as f64);
                    t.note_prediction(request.id, predicted_ms);
                    t.trace_event(TraceEvent {
                        t_ms: request.arrival_ms,
                        request_id: request.id,
                        kind: TraceEventKind::Admit {
                            deadline_ms: request.deadline_ms,
                            queue_depth: self.scheduler.queue_len(),
                            predicted_ms,
                        },
                    });
                }
                Err(reason) => {
                    let (counter, label) = match reason {
                        RejectReason::QueueFull => (t.ids.rejected_queue_full, "queue-full"),
                        RejectReason::CertainMiss => (t.ids.rejected_certain_miss, "certain-miss"),
                    };
                    t.shard.add(counter, 1);
                    t.trace_event(TraceEvent {
                        t_ms: request.arrival_ms,
                        request_id: request.id,
                        kind: TraceEventKind::Reject { reason: label },
                    });
                }
            }
        }
        result.map(|_| ())
    }

    /// Finishes a window on a dead device: queued and incoming requests are
    /// lost, and a dead window report is recorded. Returns the queued
    /// requests the death dropped so closed-loop callers can retry them
    /// elsewhere; open-loop callers ignore the return.
    pub(crate) fn record_dead_window(&mut self, t_s: u32, arrivals: u64) -> Vec<Request> {
        self.arrivals_total += arrivals;
        let dropped_requests = self.scheduler.drain_queue();
        self.dropped_dead += dropped_requests.len() as u64 + arrivals;
        if let Some(t) = &mut self.telemetry {
            t.shard.add(t.ids.windows_dead, 1);
            // the count includes this window's arrivals, which never became
            // requests (no ids) and therefore leave no individual trace
            t.shard
                .add(t.ids.dropped_dead, dropped_requests.len() as u64 + arrivals);
            t.shard.set(t.ids.queue_depth, 0.0);
            let now_ms = t_s as f64 * WINDOW_MS;
            for request in &dropped_requests {
                t.settle_prediction(request.id, None);
                t.trace_event(TraceEvent {
                    t_ms: now_ms,
                    request_id: request.id,
                    kind: TraceEventKind::Drop {
                        reason: "dead-battery",
                    },
                });
            }
            // dead windows still scrape: the cliff alert's view of the
            // battery gauges must continue through death
            t.observe_window(t_s, (t_s + 1) as f64 * WINDOW_MS);
        }
        self.windows.push(WindowReport {
            t_s,
            level_pos: None,
            state_of_charge: self.battery.state_of_charge(),
            arrivals,
            completed: 0,
            missed: 0,
            rejected: 0,
            switched: false,
        });
        dropped_requests
    }

    /// Dispatches, charges energy, replays real inference and records the
    /// window report for a live window started with
    /// [`DeviceSim::begin_window`]. Returns this window's completions so
    /// closed-loop callers can settle per-request outcomes (deadline met or
    /// missed); open-loop callers ignore the return.
    pub(crate) fn end_window(
        &mut self,
        t_s: u32,
        window_end_ms: f64,
        arrivals: u64,
        rejected_window: u64,
        background_j: f64,
    ) -> Vec<Completion> {
        self.arrivals_total += arrivals;
        let level_pos = self.active_level.expect("window began on a live device");
        let level = self.levels[level_pos];
        let base_latency = self.active_base_latency_ms;

        // 4. dispatch everything that can start inside this window, with
        //    batch service times charged by the shared cost model
        let cost = &self.cost;
        let completions = self.scheduler.dispatch(window_end_ms, level_pos, |batch| {
            cost.service_from_base_ms(level_pos, base_latency, batch)
        });

        // 5. charge inference energy: each worker is one core of the
        //    cluster, so a batch costs (cluster power / workers) × time
        let core_power_w = self.power.power_w(&level) / self.workers as f64;
        let mut window_missed = 0u64;
        for completion in &completions {
            let service_share =
                (completion.finish_ms - completion.start_ms) / completion.batch as f64;
            let energy = core_power_w * service_share / 1_000.0;
            self.inference_energy_j += energy;
            if !self.battery.drain(energy) {
                self.battery.drain(self.battery.remaining_j());
            }
            self.completed += 1;
            self.runs_per_level[completion.level_pos] += 1;
            self.latency_hist.record(completion.latency_ms());
            if !completion.met_deadline {
                window_missed += 1;
            }
            if let Some(t) = &mut self.telemetry {
                t.shard.add(t.ids.completed, 1);
                t.shard.record(t.ids.latency_ms, completion.latency_ms());
                t.shard.record(
                    t.ids.queue_wait_ms,
                    completion.start_ms - completion.arrival_ms,
                );
                t.shard
                    .record(t.ids.infer_ms, completion.finish_ms - completion.start_ms);
                if !completion.met_deadline {
                    t.shard.add(t.ids.deadline_missed, 1);
                }
                if t.full() {
                    let predicted_ms =
                        t.settle_prediction(completion.id, Some(completion.latency_ms()));
                    t.trace_event(TraceEvent {
                        t_ms: completion.finish_ms,
                        request_id: completion.id,
                        kind: TraceEventKind::Complete {
                            arrival_ms: completion.arrival_ms,
                            start_ms: completion.start_ms,
                            finish_ms: completion.finish_ms,
                            batch: completion.batch,
                            level_pos: completion.level_pos,
                            met_deadline: completion.met_deadline,
                            predicted_ms,
                        },
                    });
                }
            }
        }
        self.missed += window_missed;
        // one pool batch per dispatched micro-batch: the scheduler pushes
        // a batch's completions consecutively and stamps each with the
        // batch size, so stepping by that size recovers the batches even
        // when several start at the same instant on different workers
        let mut batch_sizes: Vec<usize> = Vec::new();
        let mut i = 0;
        while i < completions.len() {
            let batch = completions[i].batch;
            if let Some(t) = &mut self.telemetry {
                t.shard.record(t.ids.batch_size, batch as f64);
                // one Infer span per dispatched batch (stamped with the
                // batch's first request) bounds trace volume
                t.trace_event(TraceEvent {
                    t_ms: completions[i].start_ms,
                    request_id: completions[i].id,
                    kind: TraceEventKind::Infer {
                        start_ms: completions[i].start_ms,
                        batch,
                        level_pos,
                    },
                });
            }
            batch_sizes.push(batch);
            i += batch;
        }

        // 6. replay the dispatched batches as real sparse inference; with
        //    telemetry on, every worker times its batches and the timings
        //    fold into the device shard after the join
        if self.real_inference && !batch_sizes.is_empty() {
            let outcome = match &mut self.telemetry {
                Some(t) => {
                    let (pool_telemetry, shard) = t.pool_view();
                    pool::run_batches_instrumented(
                        self.bank.get(level_pos),
                        &batch_sizes,
                        self.workers,
                        &pool_telemetry,
                        shard,
                    )
                }
                None => pool::run_batches(self.bank.get(level_pos), &batch_sizes, self.workers),
            };
            self.checksum += outcome.checksum;
            self.real_batches += outcome.batches;
        }

        // 7. background drain
        self.background_energy_j += background_j;
        if !self.battery.drain(background_j) {
            self.battery.drain(self.battery.remaining_j());
        }

        if let Some(t) = &mut self.telemetry {
            t.shard.add(t.ids.windows_served, 1);
            t.shard
                .set(t.ids.queue_depth, self.scheduler.queue_len() as f64);
            // fold this window's bank activity (hits from pool lookups,
            // builds/evictions from switches) into the counters
            let stats = self.bank.stats();
            t.shard
                .add(t.ids.bank_hits, stats.hits - self.bank_stats_seen.hits);
            t.shard.add(
                t.ids.bank_builds,
                stats.builds - self.bank_stats_seen.builds,
            );
            t.shard.add(
                t.ids.bank_evictions,
                stats.evictions - self.bank_stats_seen.evictions,
            );
            self.bank_stats_seen = stats;
            // window boundary: scrape the shard into the live series and
            // evaluate the alert rules (Full only; deterministic under seed)
            t.observe_window(t_s, window_end_ms);
        }

        self.windows.push(WindowReport {
            t_s,
            level_pos: Some(level_pos),
            state_of_charge: self.battery.state_of_charge(),
            arrivals,
            completed: completions.len() as u64,
            missed: window_missed,
            rejected: rejected_window,
            switched: self.last_switched,
        });
        completions
    }

    /// A snapshot of everything telemetry has recorded so far (`None` when
    /// telemetry is off). Used by tests to inspect gauges mid-run;
    /// [`DeviceSim::into_report`] takes the final one.
    #[cfg(test)]
    pub(crate) fn telemetry_snapshot(&self) -> Option<rt3_telemetry::TelemetrySnapshot> {
        self.telemetry.as_ref().map(|t| t.snapshot())
    }

    /// Finalises the run: drops leftover queue entries and assembles the
    /// [`ServeReport`]. Returns the bank alongside so callers that own it
    /// (the single-device engine) can keep it warm across runs.
    pub(crate) fn into_report(
        mut self,
        scenario: String,
        policy: String,
    ) -> (ServeReport, ModelBank<'m, M>) {
        // requests still queued when the trace ends count as misses, but are
        // reported separately from admission rejections
        let leftover_requests = self.scheduler.drain_queue();
        let leftover = leftover_requests.len() as u64;
        let telemetry = self.telemetry.as_mut().map(|t| {
            t.shard.add(t.ids.dropped_trace_end, leftover);
            let end_ms = self
                .windows
                .last()
                .map_or(0.0, |w| (w.t_s + 1) as f64 * WINDOW_MS);
            for request in &leftover_requests {
                t.settle_prediction(request.id, None);
                t.trace_event(TraceEvent {
                    t_ms: end_ms,
                    request_id: request.id,
                    kind: TraceEventKind::Drop {
                        reason: "trace-end",
                    },
                });
            }
            t.snapshot()
        });
        let rejected =
            self.scheduler.rejected_queue_full() + self.scheduler.rejected_certain_miss();
        let report = ServeReport {
            scenario,
            policy,
            cost_model: self.cost.label().to_string(),
            windows: self.windows,
            arrivals: self.arrivals_total,
            completed: self.completed,
            missed_deadline: self.missed,
            rejected,
            dropped_dead_battery: self.dropped_dead,
            dropped_at_trace_end: leftover,
            latency_hist: self.latency_hist,
            switches: self.switches,
            switch_time_ms: self.switch_time_ms,
            inference_energy_j: self.inference_energy_j,
            background_energy_j: self.background_energy_j,
            runs_per_level: self.runs_per_level,
            final_state_of_charge: self.battery.state_of_charge(),
            died_at_s: self.died_at_s,
            inference_checksum: self.checksum,
            real_batches: self.real_batches,
            telemetry,
        };
        (report, self.bank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt3_core::{
        build_search_space, run_level1, run_level2_search, SurrogateEvaluator, TaskProfile,
    };
    use rt3_transformer::{TransformerConfig, TransformerLm};

    /// Satellite check for the drain-rate telemetry: after every
    /// `begin_window` the exported `time_to_death_ms` gauge must equal what
    /// the [`DrainRateTracker`] returns for the current battery state —
    /// the router and the dashboards must agree on when a device dies.
    #[test]
    fn time_to_death_gauge_tracks_the_drain_rate_tracker() {
        let model = TransformerLm::new(TransformerConfig::tiny(32), 13);
        let rt3 = Rt3Config::tiny_test();
        let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
        let backbone = run_level1(&model, &rt3, &mut evaluator);
        let space = build_search_space(&model, &backbone, &rt3);
        let outcome = run_level2_search(&model, &backbone, &space, &rt3, &mut evaluator);
        let best = outcome.best.as_ref().expect("feasible solution");

        let levels = rt3.governor.levels().to_vec();
        let bank = ModelBank::new(
            &model,
            backbone.masks.clone(),
            &space,
            &best.actions,
            MemoryModel::odroid_xu3(),
            levels.len(),
        );
        let config = ServeConfig {
            battery_capacity_j: 30.0,
            real_inference: false,
            ..ServeConfig::default()
        };
        let cost: Arc<dyn CostModel> = Arc::new(Analytic::new(
            LatencyModel {
                predictor: rt3.predictor,
                workload_config: rt3.workload_config.clone(),
                seq_len: rt3.seq_len,
            },
            config.cost,
        ));
        let mut device = DeviceSim::new(
            bank,
            RuntimeController::new(rt3.governor.clone(), config.hysteresis),
            DeadlineScheduler::new(config.scheduler),
            Battery::new(config.battery_capacity_j),
            RuntimePolicy::Adaptive,
            cost,
            PowerModel::cortex_a7(),
            levels,
            config.deadline_budget_ms,
            false,
            10,
            DeviceTelemetry::new(TelemetryConfig::counters(), Arc::new(WallClock::new())),
        );

        for t_s in 0..10u32 {
            let now_ms = t_s as f64 * WINDOW_MS;
            let serving = device.begin_window(t_s, now_ms, None, 0.0, None);
            let snapshot = device
                .telemetry_snapshot()
                .expect("telemetry is on at Counters");
            let gauge = snapshot
                .metrics
                .gauge("time_to_death_ms")
                .expect("gauge is registered and set every window");
            assert_eq!(
                gauge,
                device.time_to_death_ms(),
                "window {t_s}: exported gauge must match the tracker"
            );
            if t_s == 0 {
                // no drain observed yet: the tracker reports an infinite
                // horizon and the gauge must carry it through unchanged
                assert!(gauge.is_infinite());
            } else {
                assert!(
                    gauge.is_finite() && gauge > 0.0,
                    "window {t_s}: background drain must bound the horizon"
                );
            }
            if serving {
                // background load only: 0.5 W drains the battery so the
                // EWMA has a real trajectory to track
                device.end_window(t_s, now_ms + WINDOW_MS, 0, 0, 0.5 * WINDOW_S);
            }
        }
    }
}
