//! The serving engine: plays a [`Scenario`] against the model bank, the
//! battery-aware controller and the deadline scheduler, producing a
//! [`ServeReport`].
//!
//! The loop advances in one-second windows of simulated time. At each
//! boundary it reads telemetry (battery state of charge, thermal cap),
//! lets the [`RuntimeController`] pick a level, performs the pattern-set
//! switch when the level changed — charging [`SwitchCost::time_ms`] to the
//! workers and its memory traffic to the battery — then admits and
//! dispatches that window's arrivals. Dispatched micro-batches are also
//! replayed as real sparse inference on the [`crate::pool`] worker pool.

use crate::bank::ModelBank;
use crate::controller::{HysteresisConfig, RuntimeController, Telemetry};
use crate::pool;
use crate::report::{ServeReport, WindowReport};
use crate::scenario::Scenario;
use crate::scheduler::{DeadlineScheduler, Request, SchedulerConfig, ServiceModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rt3_core::{Rt3Config, SearchOutcome};
use rt3_hardware::{Battery, MemoryModel, PowerModel};
use rt3_pruning::PatternSpace;
use rt3_transformer::Model;

/// How the engine picks V/F levels at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimePolicy {
    /// Battery-aware reconfiguration: follow the governor with hysteresis
    /// and switch pattern sets alongside the level (the paper's approach).
    Adaptive,
    /// No reconfiguration: stay at one governor level position with its
    /// banked model for the whole trace (the E1-style baseline).
    FixedLevel(usize),
}

impl RuntimePolicy {
    /// Report label.
    pub fn label(&self, config: &Rt3Config) -> String {
        match *self {
            RuntimePolicy::Adaptive => "adaptive".to_string(),
            RuntimePolicy::FixedLevel(pos) => {
                let index = config
                    .governor
                    .levels()
                    .get(pos)
                    .map(|l| l.index)
                    .unwrap_or(pos);
                format!("fixed-l{index}")
            }
        }
    }
}

/// Serving-engine parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Battery capacity for the trace, joules.
    pub battery_capacity_j: f64,
    /// Per-request deadline: arrival + this budget, milliseconds. Should be
    /// a small multiple of the timing constraint to absorb queueing.
    pub deadline_budget_ms: f64,
    /// Scheduler parameters.
    pub scheduler: SchedulerConfig,
    /// Controller hysteresis.
    pub hysteresis: HysteresisConfig,
    /// Memory-bound fraction of an inference amortised across a micro-batch.
    pub batch_alpha: f64,
    /// Level-selection policy.
    pub policy: RuntimePolicy,
    /// Replay every dispatched micro-batch as real sparse inference on the
    /// worker pool (disable for pure-simulation parameter sweeps).
    pub real_inference: bool,
    /// Traffic seed.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            battery_capacity_j: 60.0,
            deadline_budget_ms: 400.0,
            scheduler: SchedulerConfig::default(),
            hysteresis: HysteresisConfig::default(),
            batch_alpha: 0.45,
            policy: RuntimePolicy::Adaptive,
            real_inference: true,
            seed: 0x7233,
        }
    }
}

impl ServeConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.battery_capacity_j > 0.0 && self.battery_capacity_j.is_finite()) {
            return Err("battery_capacity_j must be positive and finite".into());
        }
        if self.deadline_budget_ms <= 0.0 || self.deadline_budget_ms.is_nan() {
            return Err("deadline_budget_ms must be positive".into());
        }
        if !(0.0..1.0).contains(&self.batch_alpha) {
            return Err("batch_alpha must be in [0, 1)".into());
        }
        self.scheduler.validate()?;
        self.hysteresis.validate()?;
        Ok(())
    }
}

/// The online serving engine.
pub struct ServeEngine<'m, M: Model> {
    bank: ModelBank<'m, M>,
    rt3: Rt3Config,
    service: ServiceModel,
    power: PowerModel,
    config: ServeConfig,
}

impl<'m, M: Model> ServeEngine<'m, M> {
    /// Builds an engine from the offline artifacts: the live model, the
    /// Level-1 backbone masks, the Level-2 pattern space and the search's
    /// best solution.
    ///
    /// # Panics
    ///
    /// Panics if the search outcome has no feasible best solution, the
    /// action count differs from the governor's level count, or the serve
    /// configuration is invalid.
    pub fn new(
        model: &'m M,
        backbone_masks: rt3_transformer::MaskSet,
        space: &PatternSpace,
        outcome: &SearchOutcome,
        rt3: Rt3Config,
        config: ServeConfig,
    ) -> Self {
        config.validate().expect("invalid serve configuration");
        let best = outcome
            .best
            .as_ref()
            .expect("search outcome has no feasible solution to serve");
        assert_eq!(
            best.actions.len(),
            rt3.governor.levels().len(),
            "one action per governor level is required"
        );
        if let RuntimePolicy::FixedLevel(pos) = config.policy {
            assert!(
                pos < rt3.governor.levels().len(),
                "fixed level position {pos} outside the governor's {} levels",
                rt3.governor.levels().len()
            );
        }
        let bank = ModelBank::new(
            model,
            backbone_masks,
            space,
            &best.actions,
            MemoryModel::odroid_xu3(),
            rt3.governor.levels().len(),
        );
        let service = ServiceModel {
            predictor: rt3.predictor,
            workload_config: rt3.workload_config.clone(),
            seq_len: rt3.seq_len,
            batch_alpha: config.batch_alpha,
        };
        Self {
            bank,
            rt3,
            service,
            power: PowerModel::cortex_a7(),
            config,
        }
    }

    /// The model bank (for inspection).
    pub fn bank(&self) -> &ModelBank<'m, M> {
        &self.bank
    }

    /// The service model used for deadline accounting.
    pub fn service_model(&self) -> &ServiceModel {
        &self.service
    }

    /// Single-request service time at a governor level position, using the
    /// *achieved* sparsity of the banked variant.
    pub fn level_latency_ms(&mut self, level_pos: usize) -> f64 {
        let sparsity = self.bank.get(level_pos).sparsity;
        let level = self.rt3.governor.levels()[level_pos];
        self.service.base_latency_ms(sparsity, &level)
    }

    /// Plays `scenario` to completion and reports the outcome.
    pub fn run(&mut self, scenario: &Scenario) -> ServeReport {
        let mut controller =
            RuntimeController::new(self.rt3.governor.clone(), self.config.hysteresis);
        let mut scheduler = DeadlineScheduler::new(self.config.scheduler);
        let mut battery = Battery::new(self.config.battery_capacity_j);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let levels = self.rt3.governor.levels().to_vec();

        let mut windows = Vec::with_capacity(scenario.duration_s() as usize);
        let mut latencies: Vec<f64> = Vec::new();
        let mut runs_per_level = vec![0u64; levels.len()];
        let mut arrivals_total = 0u64;
        let mut completed = 0u64;
        let mut missed = 0u64;
        let mut switches = 0u64;
        let mut switch_time_ms = 0.0f64;
        let mut inference_energy_j = 0.0f64;
        let mut background_energy_j = 0.0f64;
        let mut died_at_s: Option<u32> = None;
        let mut dropped_dead = 0u64;
        let mut checksum = 0.0f64;
        let mut real_batches = 0u64;
        let mut next_id = 0u64;
        let mut active_level: Option<usize> = None;
        let mut active_base_latency_ms = 0.0f64;

        // the simulation advances in fixed one-second windows; scenario rates
        // are per-second, so power (W) converts to energy (J) via WINDOW_S
        const WINDOW_S: f64 = 1.0;
        const WINDOW_MS: f64 = WINDOW_S * 1_000.0;
        for t_s in 0..scenario.duration_s() {
            let now_ms = t_s as f64 * WINDOW_MS;
            let window_end_ms = now_ms + WINDOW_MS;

            // battery events that occur regardless of serving state
            if let Some(drop) = scenario.battery_cliff(t_s) {
                let loss = drop * battery.capacity_j();
                let drained = battery.drain(loss.min(battery.remaining_j()));
                debug_assert!(drained);
            }
            battery.charge(scenario.charge_w(t_s) * WINDOW_S);

            let arrival_offsets = scenario.arrivals_in_second(t_s, &mut rng);
            arrivals_total += arrival_offsets.len() as u64;

            if battery.is_empty() && died_at_s.is_none() {
                died_at_s = Some(t_s);
            }
            if died_at_s.is_some() {
                // device off: queued and incoming requests are lost
                dropped_dead += scheduler.drop_all() + arrival_offsets.len() as u64;
                windows.push(WindowReport {
                    t_s,
                    level_pos: None,
                    state_of_charge: battery.state_of_charge(),
                    arrivals: arrival_offsets.len() as u64,
                    completed: 0,
                    missed: 0,
                    rejected: 0,
                    switched: false,
                });
                continue;
            }

            // 1. telemetry + level decision
            let decision = match self.config.policy {
                RuntimePolicy::Adaptive => controller.decide(Telemetry {
                    now_ms,
                    state_of_charge: battery.state_of_charge(),
                    thermal_cap: scenario.thermal_cap(t_s),
                }),
                RuntimePolicy::FixedLevel(pos) => {
                    // the thermal cap is hardware-mandated even for the
                    // baseline; it keeps its (dense-for-that-level) model
                    let capped = scenario.thermal_cap(t_s).map_or(pos, |cap| pos.min(cap));
                    crate::controller::LevelDecision {
                        level_pos: capped,
                        switched: active_level != Some(capped),
                    }
                }
            };
            let level_pos = decision.level_pos;
            let level = levels[level_pos];

            // 2. pattern-set switch: charge time to the workers and traffic
            //    energy to the battery (the very first activation is a model
            //    load, not a run-time switch, and is not counted). Sparsity
            //    and base latency only change on a switch, so they are cached
            //    here rather than recomputed per window/batch.
            let counted_switch = active_level.is_some() && active_level != Some(level_pos);
            if active_level != Some(level_pos) {
                let cost = self.bank.switch_cost(level_pos);
                let sparsity = self.bank.get(level_pos).sparsity; // lazy build
                active_base_latency_ms = self.service.base_latency_ms(sparsity, &level);
                if counted_switch {
                    switches += 1;
                    switch_time_ms += cost.time_ms;
                    scheduler.block_workers_until(now_ms + cost.time_ms);
                    let switch_energy = self.power.power_w(&level) * cost.time_ms / 1_000.0;
                    inference_energy_j += switch_energy;
                    if !battery.drain(switch_energy) {
                        battery.drain(battery.remaining_j());
                    }
                }
                active_level = Some(level_pos);
            }
            let base_latency = active_base_latency_ms;

            // 3. admit this window's arrivals
            let mut rejected_window = 0u64;
            for offset in &arrival_offsets {
                let arrival_ms = now_ms + offset;
                let request = Request {
                    id: next_id,
                    arrival_ms,
                    deadline_ms: arrival_ms + self.config.deadline_budget_ms,
                };
                next_id += 1;
                if scheduler.submit(request, base_latency).is_err() {
                    rejected_window += 1;
                }
            }

            // 4. dispatch everything that can start inside this window
            let completions = scheduler.dispatch(window_end_ms, level_pos, |batch| {
                self.service.service_from_base_ms(base_latency, batch)
            });

            // 5. charge inference energy: each worker is one core of the
            //    cluster, so a batch costs (cluster power / workers) × time
            let core_power_w = self.power.power_w(&level) / self.config.scheduler.workers as f64;
            let mut window_missed = 0u64;
            for completion in &completions {
                let service_share =
                    (completion.finish_ms - completion.start_ms) / completion.batch as f64;
                let energy = core_power_w * service_share / 1_000.0;
                inference_energy_j += energy;
                if !battery.drain(energy) {
                    battery.drain(battery.remaining_j());
                }
                completed += 1;
                runs_per_level[completion.level_pos] += 1;
                latencies.push(completion.latency_ms());
                if !completion.met_deadline {
                    window_missed += 1;
                }
            }
            missed += window_missed;
            // one pool batch per dispatched micro-batch: the scheduler pushes
            // a batch's completions consecutively and stamps each with the
            // batch size, so stepping by that size recovers the batches even
            // when several start at the same instant on different workers
            let mut batch_sizes: Vec<usize> = Vec::new();
            let mut i = 0;
            while i < completions.len() {
                let batch = completions[i].batch;
                batch_sizes.push(batch);
                i += batch;
            }

            // 6. replay the dispatched batches as real sparse inference
            if self.config.real_inference && !batch_sizes.is_empty() {
                let outcome = pool::run_batches(
                    self.bank.get(level_pos),
                    &batch_sizes,
                    self.config.scheduler.workers,
                );
                checksum += outcome.checksum;
                real_batches += outcome.batches;
            }

            // 7. background drain
            let background_j = scenario.background_w(t_s) * WINDOW_S;
            background_energy_j += background_j;
            if !battery.drain(background_j) {
                battery.drain(battery.remaining_j());
            }

            windows.push(WindowReport {
                t_s,
                level_pos: Some(level_pos),
                state_of_charge: battery.state_of_charge(),
                arrivals: arrival_offsets.len() as u64,
                completed: completions.len() as u64,
                missed: window_missed,
                rejected: rejected_window,
                switched: counted_switch,
            });
        }

        // requests still queued when the trace ends count as misses, but are
        // reported separately from admission rejections
        let leftover = scheduler.drop_all();
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rejected = scheduler.rejected_queue_full() + scheduler.rejected_certain_miss();
        ServeReport {
            scenario: scenario.name().to_string(),
            policy: self.config.policy.label(&self.rt3),
            windows,
            arrivals: arrivals_total,
            completed,
            missed_deadline: missed,
            rejected,
            dropped_dead_battery: dropped_dead,
            dropped_at_trace_end: leftover,
            latencies_ms: latencies,
            switches,
            switch_time_ms,
            inference_energy_j,
            background_energy_j,
            runs_per_level,
            final_state_of_charge: battery.state_of_charge(),
            died_at_s,
            inference_checksum: checksum,
            real_batches,
        }
    }
}
