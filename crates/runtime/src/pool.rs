//! Multi-threaded worker pool executing *real* sparse inference.
//!
//! The scheduler's deadline accounting runs on the simulated mobile clock
//! (the latency of a Cortex-A7 cannot be measured on the build machine), but
//! the compute itself is real: every dispatched micro-batch is replayed here
//! as actual [`BankedModel::infer`] pattern-pruned matrix products, fanned
//! out over `std::thread` workers. The returned checksum proves the sparse
//! kernels ran and stayed bit-stable across runs; the bench harness uses the
//! same entry point to measure wall-clock sparse-serving throughput.

use crate::bank::{BankedModel, InferScratch};
use rt3_telemetry::{Clock, CounterId, HistogramId, MetricShard};
use std::thread;

/// Outcome of running a set of batches through the pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolOutcome {
    /// Batches executed.
    pub batches: u64,
    /// Sum of per-batch inference checksums (deterministic for a fixed model
    /// and batch list, independent of worker count).
    pub checksum: f64,
}

/// [`run_batches`] with a wall-clock measurement: returns the outcome plus
/// the elapsed milliseconds. This is the probe of the cost-model
/// calibration pass ([`crate::cost::calibrate`]): timing the *real* compiled
/// sparse kernels at each micro-batch size is what replaces the assumed
/// fixed amortisation α with a measured curve.
pub fn time_batches(model: &BankedModel, batches: &[usize], workers: usize) -> (PoolOutcome, f64) {
    let start = std::time::Instant::now();
    let outcome = run_batches(model, batches, workers);
    (outcome, start.elapsed().as_secs_f64() * 1_000.0)
}

/// Runs each batch size in `batches` through `model` as a real sparse
/// forward pass, using up to `workers` OS threads.
///
/// When the window carries at least as many batches as workers, batches
/// are split into contiguous chunks, one per thread; every thread returns
/// its per-batch checksums and the flat list is summed once in batch
/// order, so the result is bit-identical for any worker count. Each worker
/// owns one [`InferScratch`], so steady-state batches run through the
/// compiled-plan kernel without heap allocation.
///
/// When batches are scarcer than workers (e.g. one large inference against
/// a 4-thread pool), batch-level chunking would idle most of the pool, so
/// the batches instead run in order with *intra-matmul* row-range
/// parallelism ([`BankedModel::infer_par_with`]): each weight's matmul
/// splits its block rows across the workers — capped to the host's actual
/// hardware parallelism, because fanning one matmul across more threads
/// than cores is pure oversubscription on the *real* wall clock (on a
/// single-core host the cap disables the intra path entirely and the
/// window runs serially, exactly the pre-PR-10 behaviour). The parallel
/// kernel is bit-identical to the serial one, so the checksum stays
/// independent of the worker count either way.
pub fn run_batches(model: &BankedModel, batches: &[usize], workers: usize) -> PoolOutcome {
    if batches.is_empty() {
        return PoolOutcome {
            batches: 0,
            checksum: 0.0,
        };
    }
    let intra = intra_workers(workers, batches.len());
    if intra > 1 {
        let mut scratch = InferScratch::new();
        let checksum = batches
            .iter()
            .map(|&b| model.infer_par_with(b, &mut scratch, intra))
            .sum();
        return PoolOutcome {
            batches: batches.len() as u64,
            checksum,
        };
    }
    let workers = workers.clamp(1, batches.len());
    let chunk_len = batches.len().div_ceil(workers);
    let checksum = thread::scope(|scope| {
        let handles: Vec<_> = batches
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut scratch = InferScratch::new();
                    chunk
                        .iter()
                        .map(|&b| model.infer_with(b, &mut scratch))
                        .collect::<Vec<f64>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("inference worker panicked"))
            .sum::<f64>()
    });
    PoolOutcome {
        batches: batches.len() as u64,
        checksum,
    }
}

/// Decides the intra-matmul fan-out of a scarce-batch window: the
/// configured worker count capped to the host's hardware parallelism
/// (probed once, cached). Returns `0` or `1` when the intra path should
/// not be taken — batches are plentiful, or the host cannot actually run
/// the row ranges concurrently (a simulated 4-worker device on a 1-core
/// build host must not oversubscribe the real wall clock the loopback
/// pacing tests measure).
fn intra_workers(workers: usize, batches: usize) -> usize {
    if workers <= batches {
        return 0;
    }
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<usize> = OnceLock::new();
    let available = *AVAILABLE.get_or_init(|| {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    workers.min(available)
}

/// Telemetry hooks for an instrumented pool run: the clock that times each
/// micro-batch and the metric ids the timings are recorded under.
pub struct PoolTelemetry<'a> {
    /// Clock used to time each batch (a wall clock in production, a
    /// [`rt3_telemetry::ManualClock`] in deterministic tests).
    pub clock: &'a dyn Clock,
    /// Counter incremented once per executed batch.
    pub batches: CounterId,
    /// Histogram of per-batch kernel wall time in milliseconds.
    pub batch_wall_ms: HistogramId,
}

/// [`run_batches`] with per-batch timing: each OS thread times its batches
/// through `telemetry.clock` into a plain local `Vec<f64>` (no locks or
/// contention on the hot path), and the timings fold into `shard` in worker
/// order after the join. Recording into the caller's long-lived shard —
/// rather than minting per-worker shards and merging histogram bucket
/// arrays every call — is what keeps the per-window overhead of `Counters`
/// inside the bench gate. The checksum path is untouched — the outcome is
/// bit-identical to [`run_batches`].
pub fn run_batches_instrumented(
    model: &BankedModel,
    batches: &[usize],
    workers: usize,
    telemetry: &PoolTelemetry<'_>,
    shard: &mut MetricShard,
) -> PoolOutcome {
    if batches.is_empty() {
        return PoolOutcome {
            batches: 0,
            checksum: 0.0,
        };
    }
    let intra = intra_workers(workers, batches.len());
    if intra > 1 {
        // scarce-batch window: same intra-matmul strategy as
        // `run_batches`, timed batch by batch on the caller's thread
        let mut scratch = InferScratch::new();
        let mut checksum = 0.0;
        for &b in batches {
            let begin_ms = telemetry.clock.now_ms();
            checksum += model.infer_par_with(b, &mut scratch, intra);
            let wall_ms = telemetry.clock.now_ms() - begin_ms;
            shard.add(telemetry.batches, 1);
            shard.record(telemetry.batch_wall_ms, wall_ms);
        }
        return PoolOutcome {
            batches: batches.len() as u64,
            checksum,
        };
    }
    let workers = workers.clamp(1, batches.len());
    let chunk_len = batches.len().div_ceil(workers);
    let checksum = thread::scope(|scope| {
        let handles: Vec<_> = batches
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut scratch = InferScratch::new();
                    let mut timings_ms = Vec::with_capacity(chunk.len());
                    let checksums = chunk
                        .iter()
                        .map(|&b| {
                            let begin_ms = telemetry.clock.now_ms();
                            let checksum = model.infer_with(b, &mut scratch);
                            timings_ms.push(telemetry.clock.now_ms() - begin_ms);
                            checksum
                        })
                        .collect::<Vec<f64>>();
                    (checksums, timings_ms)
                })
            })
            .collect();
        let mut checksum = 0.0;
        for handle in handles {
            let (checksums, timings_ms) = handle.join().expect("inference worker panicked");
            checksum += checksums.into_iter().sum::<f64>();
            shard.add(telemetry.batches, timings_ms.len() as u64);
            for wall_ms in timings_ms {
                shard.record(telemetry.batch_wall_ms, wall_ms);
            }
        }
        checksum
    });
    PoolOutcome {
        batches: batches.len() as u64,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::ModelBank;
    use rt3_hardware::MemoryModel;
    use rt3_pruning::{
        block_prune_model, generate_pattern_space, BlockPruningConfig, PatternSpaceConfig,
    };
    use rt3_transformer::{TransformerConfig, TransformerLm};

    fn banked() -> BankedModel {
        let model = TransformerLm::new(TransformerConfig::tiny(32), 9);
        let backbone = block_prune_model(&model, &BlockPruningConfig::default());
        let space = generate_pattern_space(
            &model,
            &backbone,
            &[0.5],
            &PatternSpaceConfig {
                pattern_size: 4,
                patterns_per_set: 2,
                sample_fraction: 0.5,
                seed: 4,
            },
        );
        let mut bank = ModelBank::new(&model, backbone, &space, &[0], MemoryModel::odroid_xu3(), 1);
        bank.get(0).clone()
    }

    #[test]
    fn pool_result_is_independent_of_worker_count() {
        let model = banked();
        let batches = vec![1, 2, 3, 4, 2, 1, 3];
        let serial = run_batches(&model, &batches, 1);
        let parallel = run_batches(&model, &batches, 4);
        let oversubscribed = run_batches(&model, &batches, 32);
        assert_eq!(serial.batches, 7);
        assert_eq!(serial.checksum, parallel.checksum);
        assert_eq!(serial.checksum, oversubscribed.checksum);
        assert!(serial.checksum.is_finite() && serial.checksum > 0.0);
    }

    #[test]
    fn scarce_batch_window_is_bit_stable_through_intra_parallelism() {
        // fewer batches than workers routes through infer_par_with (row-range
        // parallel matmuls) when the host has the cores; the checksum must
        // not move either way
        let model = banked();
        let batches = vec![4, 2];
        let serial = run_batches(&model, &batches, 1);
        for workers in [3usize, 8, 32] {
            let intra = run_batches(&model, &batches, workers);
            assert_eq!(serial.checksum, intra.checksum, "{workers} workers");
        }
        // single large inference against a multi-thread pool
        let one = run_batches(&model, &[64], 4);
        assert_eq!(one.checksum, run_batches(&model, &[64], 1).checksum);
        // pin the parallel kernel itself (not just the pool's routing, which
        // falls back to serial on a single-core host): infer_par_with must
        // be bit-identical to infer_with for every fan-out
        let mut scratch = InferScratch::new();
        let reference = model.infer_with(4, &mut scratch);
        for workers in [2usize, 3, 8] {
            assert_eq!(
                reference,
                model.infer_par_with(4, &mut scratch, workers),
                "{workers}-way intra-matmul checksum"
            );
        }
    }

    #[test]
    fn empty_batch_list_is_a_noop() {
        let model = banked();
        let outcome = run_batches(&model, &[], 4);
        assert_eq!(outcome.batches, 0);
        assert_eq!(outcome.checksum, 0.0);
    }

    #[test]
    fn instrumented_run_matches_and_times_every_batch() {
        use rt3_telemetry::{ManualClock, MetricRegistry};
        let model = banked();
        let batches = vec![2, 3, 1, 4];
        let mut registry = MetricRegistry::new();
        let counter = registry.counter("pool_batches");
        let hist = registry.histogram("pool_batch_wall_ms");
        // each timing takes two readings of the stepping clock, so every
        // batch measures exactly one step — deterministic with one worker
        let clock = ManualClock::new(1.0);
        let telemetry = PoolTelemetry {
            clock: &clock,
            batches: counter,
            batch_wall_ms: hist,
        };
        let mut shard = registry.shard();
        let outcome = run_batches_instrumented(&model, &batches, 1, &telemetry, &mut shard);
        assert_eq!(outcome, run_batches(&model, &batches, 1));
        let snap = registry.snapshot(&shard);
        assert_eq!(snap.counter("pool_batches"), Some(4));
        let timings = snap.histogram("pool_batch_wall_ms").unwrap();
        assert_eq!(timings.count(), 4);
        assert_eq!(timings.min(), 1.0);
        assert_eq!(timings.max(), 1.0);
    }

    #[test]
    fn instrumented_timings_fold_in_across_workers() {
        use rt3_telemetry::{MetricRegistry, WallClock};
        let model = banked();
        let batches = vec![1, 2, 3, 4, 2, 1, 3];
        let mut registry = MetricRegistry::new();
        let counter = registry.counter("pool_batches");
        let hist = registry.histogram("pool_batch_wall_ms");
        let clock = WallClock::new();
        let telemetry = PoolTelemetry {
            clock: &clock,
            batches: counter,
            batch_wall_ms: hist,
        };
        let mut shard = registry.shard();
        let outcome = run_batches_instrumented(&model, &batches, 4, &telemetry, &mut shard);
        assert_eq!(outcome, run_batches(&model, &batches, 4));
        assert_eq!(shard.counter(counter), 7, "one count per batch, merged");
        assert_eq!(shard.histogram(hist).count(), 7);
    }

    #[test]
    fn timed_run_matches_the_untimed_outcome() {
        let model = banked();
        let batches = vec![2, 3, 1];
        let (timed, elapsed_ms) = time_batches(&model, &batches, 2);
        assert_eq!(timed, run_batches(&model, &batches, 2));
        assert!(elapsed_ms.is_finite() && elapsed_ms >= 0.0);
    }
}
