//! Multi-threaded worker pool executing *real* sparse inference.
//!
//! The scheduler's deadline accounting runs on the simulated mobile clock
//! (the latency of a Cortex-A7 cannot be measured on the build machine), but
//! the compute itself is real: every dispatched micro-batch is replayed here
//! as actual [`BankedModel::infer`] pattern-pruned matrix products, fanned
//! out over `std::thread` workers. The returned checksum proves the sparse
//! kernels ran and stayed bit-stable across runs; the bench harness uses the
//! same entry point to measure wall-clock sparse-serving throughput.

use crate::bank::{BankedModel, InferScratch};
use std::thread;

/// Outcome of running a set of batches through the pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolOutcome {
    /// Batches executed.
    pub batches: u64,
    /// Sum of per-batch inference checksums (deterministic for a fixed model
    /// and batch list, independent of worker count).
    pub checksum: f64,
}

/// [`run_batches`] with a wall-clock measurement: returns the outcome plus
/// the elapsed milliseconds. This is the probe of the cost-model
/// calibration pass ([`crate::cost::calibrate`]): timing the *real* compiled
/// sparse kernels at each micro-batch size is what replaces the assumed
/// fixed amortisation α with a measured curve.
pub fn time_batches(model: &BankedModel, batches: &[usize], workers: usize) -> (PoolOutcome, f64) {
    let start = std::time::Instant::now();
    let outcome = run_batches(model, batches, workers);
    (outcome, start.elapsed().as_secs_f64() * 1_000.0)
}

/// Runs each batch size in `batches` through `model` as a real sparse
/// forward pass, using up to `workers` OS threads.
///
/// Batches are split into contiguous chunks, one per thread; every thread
/// returns its per-batch checksums and the flat list is summed once in batch
/// order, so the result is bit-identical for any worker count. Each worker
/// owns one [`InferScratch`], so steady-state batches run through the
/// compiled-plan kernel without heap allocation.
pub fn run_batches(model: &BankedModel, batches: &[usize], workers: usize) -> PoolOutcome {
    if batches.is_empty() {
        return PoolOutcome {
            batches: 0,
            checksum: 0.0,
        };
    }
    let workers = workers.clamp(1, batches.len());
    let chunk_len = batches.len().div_ceil(workers);
    let checksum = thread::scope(|scope| {
        let handles: Vec<_> = batches
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut scratch = InferScratch::new();
                    chunk
                        .iter()
                        .map(|&b| model.infer_with(b, &mut scratch))
                        .collect::<Vec<f64>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("inference worker panicked"))
            .sum::<f64>()
    });
    PoolOutcome {
        batches: batches.len() as u64,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::ModelBank;
    use rt3_hardware::MemoryModel;
    use rt3_pruning::{
        block_prune_model, generate_pattern_space, BlockPruningConfig, PatternSpaceConfig,
    };
    use rt3_transformer::{TransformerConfig, TransformerLm};

    fn banked() -> BankedModel {
        let model = TransformerLm::new(TransformerConfig::tiny(32), 9);
        let backbone = block_prune_model(&model, &BlockPruningConfig::default());
        let space = generate_pattern_space(
            &model,
            &backbone,
            &[0.5],
            &PatternSpaceConfig {
                pattern_size: 4,
                patterns_per_set: 2,
                sample_fraction: 0.5,
                seed: 4,
            },
        );
        let mut bank = ModelBank::new(&model, backbone, &space, &[0], MemoryModel::odroid_xu3(), 1);
        bank.get(0).clone()
    }

    #[test]
    fn pool_result_is_independent_of_worker_count() {
        let model = banked();
        let batches = vec![1, 2, 3, 4, 2, 1, 3];
        let serial = run_batches(&model, &batches, 1);
        let parallel = run_batches(&model, &batches, 4);
        let oversubscribed = run_batches(&model, &batches, 32);
        assert_eq!(serial.batches, 7);
        assert_eq!(serial.checksum, parallel.checksum);
        assert_eq!(serial.checksum, oversubscribed.checksum);
        assert!(serial.checksum.is_finite() && serial.checksum > 0.0);
    }

    #[test]
    fn empty_batch_list_is_a_noop() {
        let model = banked();
        let outcome = run_batches(&model, &[], 4);
        assert_eq!(outcome.batches, 0);
        assert_eq!(outcome.checksum, 0.0);
    }

    #[test]
    fn timed_run_matches_the_untimed_outcome() {
        let model = banked();
        let batches = vec![2, 3, 1];
        let (timed, elapsed_ms) = time_batches(&model, &batches, 2);
        assert_eq!(timed, run_batches(&model, &batches, 2));
        assert!(elapsed_ms.is_finite() && elapsed_ms >= 0.0);
    }
}
