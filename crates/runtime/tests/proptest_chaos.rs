//! Property-fuzz for the chaos harness: *generated* scenarios — seeded
//! compositions of flash crowds, regional charge cycles, device deaths
//! and thermal waves over randomized fleets — must satisfy every global
//! invariant in [`rt3_runtime::check_invariants`] under every routing
//! policy:
//!
//! * attempt conservation (every client attempt resolves exactly once);
//! * job conservation (jobs partition into succeeded/abandoned/aborted);
//! * fleet reconciliation (arrivals = routed + unroutable, completions +
//!   drops ≤ admissions);
//! * telemetry counter reconciliation across the merged snapshots;
//! * per-device battery monotonicity (modulo charging overlays);
//! * retry counts bounded by the client policy.
//!
//! The named scenario suite (retry-storm, flash-crowd, thermal-wave,
//! charge-cycle) is pinned deterministically on top of the random draws,
//! so CI always fuzzes at least those four plus the generated ones.

use proptest::prelude::*;
use rt3_core::{
    build_search_space, run_level1, run_level2_search, Rt3Config, SearchOutcome,
    SurrogateEvaluator, TaskProfile,
};
use rt3_pruning::PatternSpace;
use rt3_runtime::{check_invariants, ChaosReport, ChaosScenario, Fleet, RoutingPolicy};
use rt3_transformer::{MaskSet, TransformerConfig, TransformerLm};
use std::sync::OnceLock;

type Artifacts = (
    TransformerLm,
    MaskSet,
    PatternSpace,
    SearchOutcome,
    Rt3Config,
);

/// The offline pipeline is deterministic and slow relative to a fleet
/// run, so it is built once and shared across every proptest case.
fn artifacts() -> &'static Artifacts {
    static CELL: OnceLock<Artifacts> = OnceLock::new();
    CELL.get_or_init(|| {
        let model = TransformerLm::new(TransformerConfig::tiny(32), 13);
        let config = Rt3Config::tiny_test();
        let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
        let backbone = run_level1(&model, &config, &mut evaluator);
        let space = build_search_space(&model, &backbone, &config);
        let outcome = run_level2_search(&model, &backbone, &space, &config, &mut evaluator);
        (model, backbone.masks, space, outcome, config)
    })
}

fn run_chaos(policy: RoutingPolicy, chaos: &ChaosScenario, seed: u64) -> ChaosReport {
    let (model, masks, space, outcome, config) = artifacts();
    let fleet_cfg = ChaosScenario::storm_fleet_config(policy, seed);
    let scenario = chaos.fleet_scenario();
    let fleet = Fleet::new(
        model,
        masks.clone(),
        space,
        outcome,
        config,
        &scenario,
        fleet_cfg,
    );
    fleet.run_chaos(chaos)
}

fn policy_of(index: usize) -> RoutingPolicy {
    match index % 3 {
        0 => RoutingPolicy::BatteryAware,
        1 => RoutingPolicy::Predictive,
        _ => RoutingPolicy::RoundRobin,
    }
}

fn assert_invariants(chaos: &ChaosScenario, report: &ChaosReport, what: &str) {
    if let Err(violations) = check_invariants(chaos, report) {
        panic!(
            "{what} ({}) violated {} invariant(s):\n  {}",
            chaos.name,
            violations.len(),
            violations.join("\n  ")
        );
    }
}

/// The four named scenarios are always fuzzed, under every policy — the
/// deterministic floor beneath the random draws below.
#[test]
fn named_scenarios_satisfy_every_invariant_under_every_policy() {
    for name in ["retry-storm", "flash-crowd", "thermal-wave", "charge-cycle"] {
        let chaos = ChaosScenario::by_name(name).expect("known scenario");
        for policy_index in 0..3 {
            let policy = policy_of(policy_index);
            let report = run_chaos(policy, &chaos, 17);
            assert_invariants(&chaos, &report, &format!("{name} under {policy:?}"));
            assert!(
                report.clients.jobs > 0,
                "{name} under {policy:?} issued no jobs"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A generated scenario — random overlays over a random fleet — keeps
    /// every global invariant, for any seed and routing policy.
    #[test]
    fn generated_scenarios_satisfy_every_invariant(
        scenario_seed in 0u64..100_000,
        run_seed in 0u64..100_000,
        policy_index in 0usize..3,
    ) {
        let chaos = ChaosScenario::generate(scenario_seed);
        let report = run_chaos(policy_of(policy_index), &chaos, run_seed);
        assert_invariants(&chaos, &report, "generated scenario");
        prop_assert!(report.clients.jobs > 0, "a generated scenario always offers load");
    }

    /// The same seed pair replays to the identical report (the property
    /// the whole harness leans on for reproducing violations).
    #[test]
    fn chaos_replay_is_exact(
        scenario_seed in 0u64..100_000,
        run_seed in 0u64..100_000,
    ) {
        let chaos = ChaosScenario::generate(scenario_seed);
        let mut a = run_chaos(RoutingPolicy::Predictive, &chaos, run_seed);
        let mut b = run_chaos(RoutingPolicy::Predictive, &chaos, run_seed);
        // wall-clock series (bank build timings) are real measurements
        // and legitimately differ between replays; everything else must
        // be bit-exact
        a.scrub_wall_clock();
        b.scrub_wall_clock();
        prop_assert_eq!(a, b);
    }
}
