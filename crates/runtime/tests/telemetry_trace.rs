//! Acceptance test for the `Full` telemetry level: a fleet run over the
//! heterogeneous-cliff trace must export JSONL from which an external
//! consumer — here, this test parsing the text lines — can reconstruct
//! every controller level switch and every deadline miss, the latter with
//! its queue/infer latency breakdown. This pins the JSONL schema of
//! DESIGN.md §9: if a field is renamed or dropped, the reconstruction
//! fails.

use rt3_core::{
    build_search_space, run_level1, run_level2_search, Rt3Config, SurrogateEvaluator, TaskProfile,
};
use rt3_runtime::{
    Fleet, FleetConfig, FleetReport, FleetScenario, SchedulerConfig, TelemetryConfig,
    TelemetryLevel,
};
use rt3_transformer::{TransformerConfig, TransformerLm};

/// Plays the heterogeneous-cliff trace at `Full` telemetry with a single
/// slow worker per device (seq_len raised to 256 so service times are
/// milliseconds, not microseconds) and a deadline budget tight enough
/// that greedy micro-batching pushes some admitted requests past their
/// deadline: admission replays the backlog it can see, so the only
/// remaining miss source is a batch growing *after* admission — requests
/// that arrive later in the window and ride the same batch stretch its
/// service time beyond the admit-time estimate. The trace therefore
/// contains genuine misses without any backlog-blind optimism.
fn run_cliff_fleet() -> (FleetReport, FleetScenario) {
    let model = TransformerLm::new(TransformerConfig::tiny(32), 13);
    let mut config = Rt3Config::tiny_test();
    config.seq_len = 256;
    let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
    let backbone = run_level1(&model, &config, &mut evaluator);
    let space = build_search_space(&model, &backbone, &config);
    let outcome = run_level2_search(&model, &backbone, &space, &config, &mut evaluator);

    let scenario = FleetScenario::heterogeneous_cliff();
    let fleet_cfg = FleetConfig {
        real_inference: false,
        deadline_budget_ms: 16.0,
        scheduler: SchedulerConfig {
            workers: 1,
            max_batch: 16,
            ..SchedulerConfig::default()
        },
        telemetry: TelemetryConfig::full(),
        ..FleetConfig::default()
    };
    let fleet = Fleet::new(
        &model,
        backbone.masks,
        &space,
        &outcome,
        &config,
        &scenario,
        fleet_cfg,
    );
    (fleet.run(), scenario)
}

/// Pulls `"key":value` out of a JSONL line (numbers/bools only).
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .expect("JSON value is followed by , or }");
    Some(&rest[..end])
}

#[test]
fn full_telemetry_jsonl_reconstructs_switches_and_misses() {
    let (report, scenario) = run_cliff_fleet();

    // a run worth auditing: traffic was served, at least one device stepped
    // its level down as the cliff drained it, and the batching pressure
    // produced real deadline misses — without them the breakdown checks
    // below would be vacuous
    assert!(report.completed() > 0);
    assert!(report.total_switches() > 0);
    assert!(
        report.missed_deadline() > 0,
        "the acceptance scenario must exercise the miss path"
    );

    let mut switch_lines = 0u64;
    let mut miss_lines = 0u64;
    let mut complete_lines = 0u64;
    for (device, profile) in report.devices.iter().zip(&scenario.devices) {
        let snapshot = device
            .telemetry
            .as_ref()
            .expect("Full level must attach a snapshot to every device");
        assert_eq!(snapshot.level, TelemetryLevel::Full);
        assert_eq!(
            snapshot.trace_overwritten, 0,
            "the default ring must hold this trace in full"
        );
        let jsonl = snapshot.to_jsonl(&[("device", &profile.name)]);
        for line in jsonl.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "every line must be a JSON object: {line}"
            );
            assert!(line.contains(&format!("\"device\":\"{}\"", profile.name)));
            if line.contains("\"type\":\"decision\"")
                && json_field(line, "switched") == Some("true")
            {
                switch_lines += 1;
            }
            if line.contains("\"event\":\"complete\"") {
                complete_lines += 1;
                if json_field(line, "met_deadline") == Some("false") {
                    miss_lines += 1;
                    // the breakdown an SLO dashboard needs: where the
                    // missed request spent its time
                    let queue_ms: f64 = json_field(line, "queue_ms")
                        .expect("complete carries queue_ms")
                        .parse()
                        .expect("queue_ms is a number");
                    let infer_ms: f64 = json_field(line, "infer_ms")
                        .expect("complete carries infer_ms")
                        .parse()
                        .expect("infer_ms is a number");
                    assert!(queue_ms >= 0.0 && infer_ms > 0.0);
                }
            }
        }
    }

    assert_eq!(
        switch_lines,
        report.total_switches(),
        "every counted level switch must be reconstructible from decision lines"
    );
    assert_eq!(
        complete_lines,
        report.completed(),
        "one complete event per served request"
    );
    assert_eq!(
        miss_lines,
        report.missed_deadline(),
        "every deadline miss must be reconstructible from complete lines"
    );

    // the router's own snapshot accounts for every arrival
    let router = report
        .telemetry
        .as_ref()
        .expect("fleet report carries the router snapshot");
    let routed: u64 = scenario
        .devices
        .iter()
        .filter_map(|p| router.metrics.counter(&format!("routed_to:{}", p.name)))
        .sum();
    assert_eq!(
        router.metrics.counter("router_arrivals"),
        Some(report.arrivals)
    );
    assert_eq!(
        routed + router.metrics.counter("router_unroutable").unwrap_or(0),
        report.arrivals
    );
}

#[test]
fn span_forest_attributes_every_miss_and_reconciles_with_histograms() {
    let (report, scenario) = run_cliff_fleet();
    assert!(
        report.missed_deadline() > 0,
        "the scenario must produce misses for the attribution to bite"
    );

    let mut merged = rt3_telemetry::SpanForest::default();
    for (device, profile) in report.devices.iter().zip(&scenario.devices) {
        let snapshot = device.telemetry.as_ref().expect("Full snapshot");
        let forest = snapshot.spans();

        // one request span per served request, reconciling with the
        // recorded per-request histograms down to summation order
        assert_eq!(forest.requests.len() as u64, device.completed);
        let queue_hist = snapshot
            .metrics
            .histogram("queue_wait_ms")
            .expect("queue_wait_ms histogram");
        let infer_hist = snapshot
            .metrics
            .histogram("infer_ms")
            .expect("infer_ms histogram");
        let span_queue: f64 = forest.requests.iter().map(|r| r.queue_ms()).sum();
        let span_infer: f64 = forest.requests.iter().map(|r| r.infer_ms()).sum();
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * a.abs().max(1.0);
        assert!(
            close(span_queue, queue_hist.sum()),
            "span queue total {span_queue} vs histogram {} on {}",
            queue_hist.sum(),
            profile.name
        );
        assert!(
            close(span_infer, infer_hist.sum()),
            "span infer total {span_infer} vs histogram {} on {}",
            infer_hist.sum(),
            profile.name
        );

        // every switch the engine counted appears as a switch span
        assert_eq!(forest.switches.len() as u64, device.switches);

        // 100% of this device's misses attribute to exactly one segment
        let attribution = forest.miss_attribution();
        assert_eq!(
            attribution.total(),
            device.missed_deadline,
            "every miss on {} is attributed to a dominant segment",
            profile.name
        );
        merged.merge(&forest);
    }

    // fleet-level merge preserves the attribution totals exactly
    let fleet_attribution = merged.miss_attribution();
    assert_eq!(fleet_attribution.total(), report.missed_deadline());
    assert_eq!(
        merged.requests.len() as u64,
        report.completed(),
        "merged forest holds every served request across devices"
    );

    // arrivals are sorted after the merge, so downstream consumers can
    // stream the fleet-wide timeline without re-sorting
    assert!(merged
        .requests
        .windows(2)
        .all(|w| w[0].arrival_ms <= w[1].arrival_ms));
}

#[test]
fn device_counters_reconcile_with_the_report() {
    let (report, _) = run_cliff_fleet();
    for device in &report.devices {
        let metrics = &device.telemetry.as_ref().expect("Full snapshot").metrics;
        assert_eq!(
            metrics.counter("requests_completed"),
            Some(device.completed)
        );
        assert_eq!(
            metrics.counter("deadline_missed"),
            Some(device.missed_deadline)
        );
        assert_eq!(metrics.counter("switches"), Some(device.switches));
        assert_eq!(
            metrics.counter("requests_dropped_dead"),
            Some(device.dropped_dead_battery)
        );
        assert_eq!(
            metrics.counter("requests_dropped_trace_end"),
            Some(device.dropped_at_trace_end)
        );
        let latency = metrics.histogram("latency_ms").expect("latency histogram");
        assert_eq!(latency.count(), device.completed);
    }
}
