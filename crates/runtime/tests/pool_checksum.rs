//! Kernel-regression guard: the worker pool's inference checksum over a
//! pinned model and batch list is pinned against the value produced by the
//! PR 2 scalar `matmul_dense` kernel, so a kernel rewrite (the PR 3 compiled
//! execution plans) cannot silently change what the sparse matmuls compute.
//!
//! The checksum is a sum of Frobenius norms of real matmul outputs; it is
//! exactly reproducible because the whole pipeline (vendored splitmix64
//! `StdRng`, IEEE-754 single-precision accumulation in a fixed order) is
//! deterministic. If an *intentional* numeric change moves it, re-capture
//! with `CHECKSUM_PRINT=1 cargo test -p rt3-runtime --test pool_checksum --
//! --nocapture` and update the constant — in the same change that explains
//! why.

use rt3_hardware::MemoryModel;
use rt3_pruning::{
    block_prune_model, generate_pattern_space, BlockPruningConfig, PatternSpaceConfig,
};
use rt3_runtime::{pool, BankedModel, ModelBank};
use rt3_transformer::{TransformerConfig, TransformerLm};

/// Pinned checksum captured from the PR 2 scalar kernel for the model and
/// batch list below (seed 21, tiny(32) transformer, one 0.6-sparsity set).
const PR2_CHECKSUM: f64 = 163.54025781154633;

fn pinned_model() -> BankedModel {
    let model = TransformerLm::new(TransformerConfig::tiny(32), 21);
    let backbone = block_prune_model(&model, &BlockPruningConfig::default());
    let space = generate_pattern_space(
        &model,
        &backbone,
        &[0.6],
        &PatternSpaceConfig {
            pattern_size: 4,
            patterns_per_set: 2,
            sample_fraction: 0.5,
            seed: 21,
        },
    );
    let mut bank = ModelBank::new(&model, backbone, &space, &[0], MemoryModel::odroid_xu3(), 1);
    bank.get(0).clone()
}

#[test]
fn pool_checksum_matches_pr2_scalar_kernel() {
    let model = pinned_model();
    let batches = vec![1, 2, 4, 8, 3, 5, 2, 1];
    let outcome = pool::run_batches(&model, &batches, 4);
    if std::env::var("CHECKSUM_PRINT").is_ok() {
        println!("pool checksum = {:?}", outcome.checksum);
        return;
    }
    assert_eq!(outcome.batches, 8);
    assert_eq!(
        outcome.checksum, PR2_CHECKSUM,
        "PoolOutcome.checksum drifted from the PR 2 kernel — the compiled \
         plan no longer computes the same products"
    );
}
