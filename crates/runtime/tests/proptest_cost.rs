//! Property-based tests for the rt3-cost layer:
//!
//! 1. the [`Analytic`] cost model reproduces the pre-refactor
//!    `ServiceModel` fixed-α math **bit-for-bit** for every batch size, so
//!    the refactor is provably behaviour-preserving under the default
//!    configuration (the golden-scenario suite pins the end-to-end
//!    consequence);
//! 2. any [`AmortisationCurve`] — however noisy the raw measurements — is
//!    monotone non-decreasing in the batch size and exact at a batch of
//!    one, including beyond the measured range;
//! 3. [`rt3_hardware::DrainRateTracker::time_to_death_ms`] is monotone
//!    *decreasing* in the observed drain rate, so predictive routing ranks
//!    faster-draining devices strictly lower;
//! 4. a real [`calibrate`] pass over the worker pool yields curves that
//!    satisfy the same invariants on every level.

use proptest::prelude::*;
use rt3_hardware::{DrainRateTracker, MemoryModel, PerformancePredictor, VfLevel};
use rt3_pruning::{
    block_prune_model, generate_pattern_space, BlockPruningConfig, PatternSpaceConfig,
};
use rt3_runtime::{
    calibrate, AmortisationCurve, Analytic, CalibrationOptions, CostConfig, CostModel,
    LatencyModel, ModelBank,
};
use rt3_transformer::{TransformerConfig, TransformerLm};

fn latency_model() -> LatencyModel {
    LatencyModel {
        predictor: PerformancePredictor::cortex_a7(),
        workload_config: TransformerConfig::paper_transformer(512),
        seq_len: 24,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The old `ServiceModel` charged
    /// `base · (α + (1 − α) · batch)`; [`Analytic`] must produce the
    /// *identical bits* for every α, base latency and batch size, at every
    /// level position (the analytic curve is level-independent).
    #[test]
    fn analytic_reproduces_the_old_service_model_bit_for_bit(
        batch_alpha in 0.0f64..0.999,
        sparsity in 0.0f64..0.95,
        level_index in 1usize..=6,
        batch in 1usize..32,
        level_pos in 0usize..8,
    ) {
        let cost = Analytic::new(latency_model(), CostConfig { batch_alpha });
        let level = VfLevel::odroid_level(level_index);
        let base = cost.base_latency_ms(sparsity, &level);
        // the pre-refactor expression, verbatim
        let old_service_model = base * (batch_alpha + (1.0 - batch_alpha) * batch as f64);
        let new = cost.service_from_base_ms(level_pos, base, batch);
        prop_assert!(
            new.to_bits() == old_service_model.to_bits(),
            "analytic ({new}) must equal the old ServiceModel math \
             ({old_service_model}) bit-for-bit"
        );
        prop_assert!(cost.service_ms(level_pos, sparsity, &level, 1).to_bits() == base.to_bits());
    }

    /// However noisy the raw measurements, the clamped curve is monotone
    /// non-decreasing in the batch size, starts at exactly 1.0, and stays
    /// monotone through the extrapolated region.
    #[test]
    fn amortisation_curves_are_monotone_non_decreasing(
        raw in proptest::collection::vec(0.01f64..10.0, 1..12),
    ) {
        let curve = AmortisationCurve::from_raw(&raw);
        prop_assert_eq!(curve.multiplier(1), 1.0);
        let horizon = raw.len() + 6; // cover extrapolation too
        for b in 1..horizon {
            prop_assert!(
                curve.multiplier(b + 1) >= curve.multiplier(b),
                "multiplier({}) = {} dips below multiplier({}) = {}",
                b + 1, curve.multiplier(b + 1), b, curve.multiplier(b)
            );
        }
    }

    /// For any fixed remaining energy, a tracker that observed a *faster*
    /// drain predicts a *shorter* (or equal, at saturation) time to death:
    /// the predictive router's ranking direction.
    #[test]
    fn time_to_death_is_monotone_decreasing_in_the_drain_rate(
        remaining_j in 0.1f64..100.0,
        slow_w in 0.001f64..5.0,
        faster_by_w in 0.001f64..5.0,
        start_j in 100.0f64..200.0,
    ) {
        let fast_w = slow_w + faster_by_w;
        let mut slow = DrainRateTracker::new(0.25);
        let mut fast = DrainRateTracker::new(0.25);
        slow.observe(1.0, start_j);
        fast.observe(1.0, start_j);
        slow.observe(1.0, start_j - slow_w);
        fast.observe(1.0, start_j - fast_w);
        let slow_ttd = slow.time_to_death_ms(remaining_j);
        let fast_ttd = fast.time_to_death_ms(remaining_j);
        prop_assert!(
            fast_ttd < slow_ttd,
            "draining at {fast_w} W must predict death ({fast_ttd} ms) strictly \
             before draining at {slow_w} W ({slow_ttd} ms)"
        );
        // and the prediction is the exact linear extrapolation of the
        // tracker's own smoothed rate
        prop_assert!(slow_ttd == remaining_j / slow.drain_rate_w() * 1_000.0);
    }
}

/// One real measurement pass over the worker pool: every level's curve must
/// come out monotone with an exact batch-of-one anchor, and the calibrated
/// model must serve batches of one at exactly the predictor's latency.
#[test]
fn real_calibration_pass_yields_monotone_curves() {
    let model = TransformerLm::new(TransformerConfig::tiny(32), 9);
    let backbone = block_prune_model(&model, &BlockPruningConfig::default());
    let space = generate_pattern_space(
        &model,
        &backbone,
        &[0.4, 0.7],
        &PatternSpaceConfig {
            pattern_size: 4,
            patterns_per_set: 2,
            sample_fraction: 0.5,
            seed: 4,
        },
    );
    let bank = ModelBank::new(
        &model,
        backbone,
        &space,
        &[0, 1],
        MemoryModel::odroid_xu3(),
        2,
    );
    let (calibrated, report) = calibrate(latency_model(), &bank, CalibrationOptions::quick());
    assert_eq!(calibrated.levels(), 2);
    assert_eq!(report.levels.len(), 2);
    for level in &report.levels {
        assert_eq!(level.curve.multiplier(1), 1.0);
        for b in 1..level.curve.len() + 4 {
            assert!(
                level.curve.multiplier(b + 1) >= level.curve.multiplier(b),
                "level {} curve must be monotone",
                level.level_pos
            );
        }
        for point in &level.points {
            assert!(point.measured_ms.is_finite() && point.measured_ms >= 0.0);
        }
    }
    // batch of one costs exactly the predictor's latency under calibration
    let level = VfLevel::odroid_level(3);
    let base = calibrated.base_latency_ms(0.5, &level);
    assert_eq!(calibrated.service_ms(0, 0.5, &level, 1), base);
    assert_eq!(calibrated.label(), "calibrated");
}
