//! Property-based tests for the runtime invariants:
//!
//! 1. the hysteresis controller never performs two switches within one
//!    hysteresis (dwell) window, for any battery trajectory;
//! 2. the model bank returns masks bit-identical to a cold rebuild, for any
//!    access sequence and cache capacity;
//! 3. the scheduler's deadline accounting charges exactly the
//!    `PerformancePredictor` latency for a single-request batch, and the
//!    documented amortisation for micro-batches.

use proptest::prelude::*;
use rt3_hardware::{DvfsGovernor, MemoryModel, ModelWorkload, PerformancePredictor, VfLevel};
use rt3_pruning::{
    block_prune_model, generate_pattern_space, BlockPruningConfig, PatternSpaceConfig,
};
use rt3_runtime::{
    Analytic, CostConfig, CostModel, DeadlineScheduler, HysteresisConfig, LatencyModel, ModelBank,
    Request, RuntimeController, SchedulerConfig, Telemetry,
};
use rt3_sparse::SparseFormat;
use rt3_transformer::{TransformerConfig, TransformerLm};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any battery trajectory (arbitrary up/down jumps, arbitrary sample
    /// spacing), two controller switches are never closer than the dwell
    /// window — the "no oscillation between adjacent levels within one
    /// hysteresis window" invariant.
    #[test]
    fn hysteresis_never_switches_twice_within_one_window(
        steps in proptest::collection::vec((1.0f64..3_000.0, 0.0f64..1.0), 2..60),
        min_dwell_ms in 100.0f64..5_000.0,
        soc_margin in 0.0f64..0.1,
    ) {
        let mut controller = RuntimeController::new(
            DvfsGovernor::paper_default(),
            HysteresisConfig { min_dwell_ms, soc_margin },
        );
        let mut now_ms = 0.0;
        let mut switch_times: Vec<f64> = Vec::new();
        for (dt_ms, soc) in steps {
            now_ms += dt_ms;
            let decision = controller.decide(Telemetry {
                now_ms,
                state_of_charge: soc,
                thermal_cap: None,
            });
            if decision.switched {
                switch_times.push(now_ms);
            }
        }
        // the first switch is the initial level activation; every later pair
        // must respect the dwell window
        for pair in switch_times.windows(2) {
            prop_assert!(
                pair[1] - pair[0] >= min_dwell_ms,
                "switches at {} and {} violate the {} ms dwell window",
                pair[0], pair[1], min_dwell_ms
            );
        }
    }

    /// After any access sequence (hits, misses, evictions at any capacity),
    /// the bank's masks are bit-identical to a cold rebuild.
    #[test]
    fn bank_masks_survive_any_eviction_pattern(
        accesses in proptest::collection::vec(0usize..3, 1..24),
        capacity in 1usize..4,
    ) {
        let model = TransformerLm::new(TransformerConfig::tiny(32), 21);
        let backbone = block_prune_model(&model, &BlockPruningConfig::default());
        let space = generate_pattern_space(
            &model,
            &backbone,
            &[0.4, 0.6, 0.8],
            &PatternSpaceConfig {
                pattern_size: 4,
                patterns_per_set: 2,
                sample_fraction: 0.5,
                seed: 6,
            },
        );
        let mut bank = ModelBank::new(
            &model,
            backbone.clone(),
            &space,
            &[0, 1, 2],
            MemoryModel::odroid_xu3(),
            capacity,
        );
        let reference: Vec<_> = (0..3).map(|pos| bank.rebuild_cold(pos)).collect();
        for &pos in &accesses {
            let banked = bank.get(pos);
            prop_assert_eq!(&banked.masks, &reference[pos].masks);
            prop_assert!(banked.sparsity == reference[pos].sparsity);
            prop_assert!(
                banked.infer(2) == reference[pos].infer(2),
                "banked weights must match a cold rebuild bit-for-bit"
            );
        }
        let stats = bank.stats();
        prop_assert_eq!(stats.hits + stats.builds, accesses.len() as u64);
        if capacity >= 3 {
            prop_assert_eq!(stats.evictions, 0);
        }
    }

    /// A single-request batch is charged exactly the predictor's latency at
    /// the active level, and a k-batch is charged the documented
    /// amortisation — so scheduler deadline accounting and the paper's
    /// latency model can never drift apart.
    #[test]
    fn scheduler_deadline_accounting_matches_the_predictor(
        sparsity in 0.0f64..0.95,
        level_index in 1usize..=6,
        arrival_ms in 0.0f64..10_000.0,
        batch in 1usize..8,
        batch_alpha in 0.0f64..0.9,
    ) {
        let cost = Analytic::new(
            LatencyModel {
                predictor: PerformancePredictor::cortex_a7(),
                workload_config: TransformerConfig::paper_transformer(512),
                seq_len: 24,
            },
            CostConfig { batch_alpha },
        );
        let level = VfLevel::odroid_level(level_index);
        let workload = ModelWorkload::from_config(
            &cost.latency_model().workload_config,
            sparsity,
            cost.latency_model().seq_len,
            SparseFormat::BlockPruned,
        );
        let predicted = cost.latency_model().predictor.latency_ms(&workload, &level);

        // the cost model agrees with the predictor bit-for-bit at batch 1
        prop_assert!(cost.base_latency_ms(sparsity, &level) == predicted);
        prop_assert!(cost.service_ms(0, sparsity, &level, 1) == predicted);
        let expected_batch =
            predicted * (batch_alpha + (1.0 - batch_alpha) * batch as f64);
        prop_assert!((cost.service_ms(0, sparsity, &level, batch) - expected_batch).abs() < 1e-9);

        // and the scheduler charges exactly that service time on the clock
        let mut scheduler = DeadlineScheduler::new(SchedulerConfig {
            queue_capacity: 16,
            max_batch: 8,
            workers: 2,
        });
        let request = Request {
            id: 1,
            arrival_ms,
            deadline_ms: arrival_ms + predicted + 1.0,
        };
        prop_assert!(scheduler
            .submit(request, |b| cost.service_ms(0, sparsity, &level, b))
            .is_ok());
        let done = scheduler.dispatch(f64::INFINITY, 0, |b| {
            cost.service_ms(0, sparsity, &level, b)
        });
        prop_assert_eq!(done.len(), 1);
        prop_assert!(done[0].start_ms == arrival_ms, "idle worker starts at arrival");
        prop_assert!(
            done[0].finish_ms == done[0].start_ms + predicted,
            "charged completion {} must be start {} + predicted latency {}",
            done[0].finish_ms, done[0].start_ms, predicted
        );
        prop_assert!(done[0].met_deadline);
    }
}
