//! Property-based tests for the fleet router invariants:
//!
//! 1. a dead-battery device never appears in the preference order (it can
//!    never receive traffic);
//! 2. every alive device appears exactly once — failover walks the whole
//!    order, so no request is dropped while at least one device is
//!    admissible;
//! 3. ranking is deterministic for a fixed router state, for every policy;
//! 4. the scored orders (battery-aware and predictive) are sorted by the
//!    published score.

use proptest::prelude::*;
use rt3_runtime::{DeviceSnapshot, Router, RouterConfig, RoutingPolicy};

fn policy_of(index: usize) -> RoutingPolicy {
    match index % 4 {
        0 => RoutingPolicy::BatteryAware,
        1 => RoutingPolicy::Predictive,
        2 => RoutingPolicy::RoundRobin,
        _ => RoutingPolicy::Sticky,
    }
}

fn snapshot_of((alive, soc, queue_len, predicted_ms): (usize, f64, usize, f64)) -> DeviceSnapshot {
    DeviceSnapshot {
        alive: alive == 1,
        state_of_charge: soc,
        level_pos: queue_len % 3,
        levels: 3,
        queue_len,
        queue_capacity: 64,
        predicted_latency_ms: predicted_ms,
        deadline_budget_ms: 400.0,
        // derived, not drawn: keeps the generator small while still varying
        // the predictive policy's headroom term (charging devices included)
        time_to_death_ms: if queue_len % 5 == 0 {
            f64::INFINITY
        } else {
            soc * 200_000.0
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The preference order is exactly the alive devices: no dead device is
    /// ever ranked, every alive one appears exactly once (so failover can
    /// reach every admissible device), for every routing policy.
    #[test]
    fn order_is_a_permutation_of_the_alive_devices(
        raw in proptest::collection::vec(
            (0usize..2, 0.0f64..1.0, 0usize..64, 0.0f64..500.0),
            1..10,
        ),
        policy_index in 0usize..4,
        advance in 0usize..7,
    ) {
        let snapshots: Vec<DeviceSnapshot> = raw.into_iter().map(snapshot_of).collect();
        let mut router = Router::new(RouterConfig {
            policy: policy_of(policy_index),
            ..RouterConfig::default()
        });
        // move the round-robin / sticky cursors to an arbitrary position
        for step in 0..advance {
            router.commit(Some(step % snapshots.len()), snapshots.len());
        }
        let order = router.order(&snapshots);
        let alive: Vec<usize> = (0..snapshots.len())
            .filter(|&i| snapshots[i].alive)
            .collect();
        prop_assert_eq!(order.len(), alive.len());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(
            &sorted, &alive,
            "order must rank every alive device exactly once and no dead one"
        );
        // a request is unroutable only when every device is dead
        if !alive.is_empty() {
            prop_assert!(!order.is_empty());
        }
    }

    /// Ranking has no side effects: the same router state and snapshots
    /// produce the same order, for every policy.
    #[test]
    fn ranking_is_deterministic_for_a_fixed_state(
        raw in proptest::collection::vec(
            (0usize..2, 0.0f64..1.0, 0usize..64, 0.0f64..500.0),
            1..10,
        ),
        policy_index in 0usize..4,
    ) {
        let snapshots: Vec<DeviceSnapshot> = raw.into_iter().map(snapshot_of).collect();
        let router = Router::new(RouterConfig {
            policy: policy_of(policy_index),
            ..RouterConfig::default()
        });
        let first = router.order(&snapshots);
        let second = router.order(&snapshots);
        prop_assert_eq!(first, second, "order must be a pure function of state");
    }

    /// The scored orders (battery-aware and predictive) descend in score
    /// (ties broken by index), so the published formula really is the
    /// routing behaviour.
    #[test]
    fn battery_aware_order_descends_in_score(
        raw in proptest::collection::vec(
            (0usize..2, 0.0f64..1.0, 0usize..64, 0.0f64..500.0),
            1..10,
        ),
        scored_policy in 0usize..2,
    ) {
        let snapshots: Vec<DeviceSnapshot> = raw.into_iter().map(snapshot_of).collect();
        let router = Router::new(RouterConfig {
            policy: policy_of(scored_policy),
            ..RouterConfig::default()
        });
        let order = router.order(&snapshots);
        for pair in order.windows(2) {
            let (a, b) = (
                router.score(&snapshots[pair[0]]),
                router.score(&snapshots[pair[1]]),
            );
            prop_assert!(
                a > b || (a == b && pair[0] < pair[1]),
                "device {} (score {}) ranked above device {} (score {})",
                pair[0], a, pair[1], b
            );
        }
    }
}
