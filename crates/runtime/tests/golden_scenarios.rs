//! Golden regression suite: each of the five single-device scenarios is
//! played with a fixed seed and its [`ServeReport`] aggregates are pinned
//! against checked-in expected values, so a refactor of the engine, the
//! scheduler or the controller cannot silently change serving behaviour.
//!
//! The values depend only on deterministic simulation (the vendored
//! splitmix64 `StdRng` and IEEE-754 arithmetic), so they are stable across
//! machines. If an *intentional* behaviour change moves them, re-run with
//! `GOLDEN_PRINT=1` (`GOLDEN_PRINT=1 cargo test -p rt3-runtime --test
//! golden_scenarios -- --nocapture`) and update the table — in the same
//! change that explains why.

use rt3_core::{
    build_search_space, run_level1, run_level2_search, Rt3Config, SearchOutcome,
    SurrogateEvaluator, TaskProfile,
};
use rt3_pruning::PatternSpace;
use rt3_runtime::{Scenario, ServeConfig, ServeEngine, ServeReport};
use rt3_transformer::{MaskSet, TransformerConfig, TransformerLm};

/// The pinned aggregates of one scenario run.
///
/// The latency percentiles are the *bucket uppers* of the streaming
/// log-bucketed histogram (base-2, 32 sub-buckets, ≈3.1% relative error),
/// not exact nearest-rank values: the report computes them from the merged
/// histogram, so they are deterministic and pinnable exactly, but an update
/// that moves one by a single bucket (one ≈3.1% step) is within the
/// documented quantisation, not a behaviour change.
#[derive(Debug, PartialEq)]
struct Golden {
    scenario: &'static str,
    arrivals: u64,
    completed: u64,
    missed_deadline: u64,
    rejected: u64,
    dropped_dead_battery: u64,
    dropped_at_trace_end: u64,
    switches: u64,
    died_at_s: Option<u32>,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

impl Golden {
    fn of(report: &ServeReport) -> Self {
        Self {
            scenario: match report.scenario.as_str() {
                "constant-drain" => "constant-drain",
                "bursty-traffic" => "bursty-traffic",
                "cliff-discharge" => "cliff-discharge",
                "charge-while-serving" => "charge-while-serving",
                "thermal-cap" => "thermal-cap",
                other => panic!("unexpected scenario {other}"),
            },
            arrivals: report.arrivals,
            completed: report.completed,
            missed_deadline: report.missed_deadline,
            rejected: report.rejected,
            dropped_dead_battery: report.dropped_dead_battery,
            dropped_at_trace_end: report.dropped_at_trace_end,
            switches: report.switches,
            died_at_s: report.died_at_s,
            p50_ms: report.p50_ms(),
            p95_ms: report.p95_ms(),
            p99_ms: report.p99_ms(),
        }
    }
}

fn offline_artifacts() -> (
    TransformerLm,
    MaskSet,
    PatternSpace,
    SearchOutcome,
    Rt3Config,
) {
    let model = TransformerLm::new(TransformerConfig::tiny(32), 13);
    let config = Rt3Config::tiny_test();
    let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
    let backbone = run_level1(&model, &config, &mut evaluator);
    let space = build_search_space(&model, &backbone, &config);
    let outcome = run_level2_search(&model, &backbone, &space, &config, &mut evaluator);
    (model, backbone.masks, space, outcome, config)
}

/// The five fixed traces of the regression suite; every parameter is pinned
/// on purpose — do not "tidy" them.
fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario::ConstantDrain {
            duration_s: 60,
            rps: 4.0,
            background_w: 0.2,
        },
        Scenario::default_bursty(),
        Scenario::CliffDischarge {
            duration_s: 60,
            rps: 4.0,
            background_w: 0.2,
            cliff_at_s: 25,
            cliff_drop: 0.6,
        },
        Scenario::ChargeWhileServing {
            duration_s: 60,
            rps: 4.0,
            background_w: 0.2,
            charge_from_s: 30,
            charge_w: 2.0,
        },
        Scenario::ThermalCap {
            duration_s: 60,
            rps: 4.0,
            background_w: 0.2,
            cap_from_s: 10,
            cap_until_s: 45,
            cap_level_pos: 0,
        },
    ]
}

/// Expected aggregates, in `scenarios()` order. Captured from the seed
/// behaviour of the engine (PR 1) via `GOLDEN_PRINT=1`; the latency
/// percentiles were captured when the reports moved to the shared streaming
/// histogram (values are bucket uppers clamped to the observed max, hence
/// the near-identical-but-distinct p50s across scenarios).
fn expected() -> Vec<Golden> {
    vec![
        Golden {
            scenario: "constant-drain",
            arrivals: 240,
            completed: 240,
            missed_deadline: 0,
            rejected: 0,
            dropped_dead_battery: 0,
            dropped_at_trace_end: 0,
            switches: 1,
            died_at_s: None,
            p50_ms: 0.22265625,
            p95_ms: 0.32097733399132267,
            p99_ms: 0.32097733399132267,
        },
        Golden {
            scenario: "bursty-traffic",
            arrivals: 3600,
            completed: 3600,
            missed_deadline: 0,
            rejected: 0,
            dropped_dead_battery: 0,
            dropped_at_trace_end: 0,
            switches: 0,
            died_at_s: None,
            p50_ms: 0.22245718238991685,
            p95_ms: 0.22245718238991685,
            p99_ms: 0.22245718238991685,
        },
        Golden {
            scenario: "cliff-discharge",
            arrivals: 240,
            completed: 160,
            missed_deadline: 0,
            rejected: 0,
            dropped_dead_battery: 80,
            dropped_at_trace_end: 0,
            switches: 1,
            died_at_s: Some(40),
            p50_ms: 0.22265625,
            p95_ms: 0.38930006917144055,
            p99_ms: 0.38930006917144055,
        },
        Golden {
            scenario: "charge-while-serving",
            arrivals: 240,
            completed: 240,
            missed_deadline: 0,
            rejected: 0,
            dropped_dead_battery: 0,
            dropped_at_trace_end: 0,
            switches: 0,
            died_at_s: None,
            p50_ms: 0.22245718238286827,
            p95_ms: 0.22245718238286827,
            p99_ms: 0.22245718238286827,
        },
        Golden {
            scenario: "thermal-cap",
            arrivals: 240,
            completed: 240,
            missed_deadline: 0,
            rejected: 0,
            dropped_dead_battery: 0,
            dropped_at_trace_end: 0,
            switches: 3,
            died_at_s: None,
            p50_ms: 0.38930006917144055,
            p95_ms: 0.38930006917144055,
            p99_ms: 0.38930006917144055,
        },
    ]
}

#[test]
fn five_scenarios_match_their_golden_aggregates() {
    let (model, masks, space, outcome, config) = offline_artifacts();
    let expected = expected();
    let mut actual = Vec::new();
    for scenario in scenarios() {
        let serve = ServeConfig {
            battery_capacity_j: 20.0,
            real_inference: false,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(
            &model,
            masks.clone(),
            &space,
            &outcome,
            config.clone(),
            serve,
        );
        let report = engine.run(&scenario);
        actual.push(Golden::of(&report));
    }
    if std::env::var("GOLDEN_PRINT").is_ok() {
        for golden in &actual {
            println!("{golden:?}");
        }
        return;
    }
    for (actual, expected) in actual.iter().zip(&expected) {
        assert_eq!(
            actual, expected,
            "scenario {} drifted from its golden aggregates — if the change \
             is intentional, re-capture with GOLDEN_PRINT=1",
            expected.scenario
        );
    }
}
