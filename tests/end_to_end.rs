//! Cross-crate integration tests: the full RT3 pipeline wired through the
//! facade crate, with both the surrogate and the real-training evaluators.

use rt3::core::{
    build_search_space, compute_reward, joint_train_lm, run_level1, run_level2_search,
    AccuracyEvaluator, PruningSpec, RewardParams, Rt3Config, SurrogateEvaluator, TaskProfile,
    TrainedLmEvaluator,
};
use rt3::data::{CorpusConfig, MarkovCorpus};
use rt3::hardware::{ModelWorkload, PerformancePredictor, VfLevel};
use rt3::pruning::combined_masks_for_model;
use rt3::sparse::SparseFormat;
use rt3::transformer::{Model, TrainOptions, TransformerConfig, TransformerLm};

fn tiny_model() -> TransformerLm {
    TransformerLm::new(TransformerConfig::tiny(48), 11)
}

#[test]
fn full_pipeline_with_surrogate_produces_feasible_reconfigurable_solution() {
    let model = tiny_model();
    let mut config = Rt3Config::tiny_test();
    config.episodes = 10;
    let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());

    let backbone = run_level1(&model, &config, &mut evaluator);
    assert!(backbone.sparsity > 0.2 && backbone.sparsity < 0.9);

    let space = build_search_space(&model, &backbone, &config);
    assert_eq!(space.len(), config.candidate_sparsities);

    let outcome = run_level2_search(&model, &backbone, &space, &config, &mut evaluator);
    let best = outcome.best.expect("feasible solution expected");
    assert_eq!(best.sparsities.len(), config.num_levels());
    assert!(best.meets_constraint);
    // every sub-model is at least as sparse as the backbone
    for s in &best.sparsities {
        assert!(*s >= backbone.sparsity - 1e-6);
    }
    // accuracy decreases (weakly) towards lower-frequency levels in the best
    // solution, because Eq. (1) penalises the opposite ordering
    assert!(best.accuracies[0] >= *best.accuracies.last().unwrap() - 0.05);
}

#[test]
fn pipeline_masks_compose_and_predict_lower_latency_at_higher_sparsity() {
    let model = tiny_model();
    let config = Rt3Config::tiny_test();
    let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
    let backbone = run_level1(&model, &config, &mut evaluator);
    let space = build_search_space(&model, &backbone, &config);
    let prunable = model.prunable_parameter_names();

    let predictor = PerformancePredictor::cortex_a7();
    let level = VfLevel::odroid_level(6);
    let mut previous_latency = f64::INFINITY;
    for candidate in space.candidates() {
        let masks = combined_masks_for_model(&model, &backbone.masks, &prunable, &candidate.set);
        assert!(masks.overall_sparsity() >= backbone.masks.overall_sparsity() - 1e-9);
        let workload = ModelWorkload::from_config(
            &config.workload_config,
            masks.overall_sparsity(),
            config.seq_len,
            SparseFormat::BlockPruned,
        );
        let latency = predictor.latency_ms(&workload, &level);
        assert!(
            latency <= previous_latency + 1e-9,
            "latency must not grow with sparsity"
        );
        previous_latency = latency;
    }
}

#[test]
fn trained_evaluator_and_joint_training_run_end_to_end() {
    // Small but real: BP on a real model, masked evaluation by real
    // fine-tuning, and joint training under two pattern sets.
    let corpus = MarkovCorpus::generate(&CorpusConfig {
        vocab_size: 48,
        train_tokens: 1_500,
        valid_tokens: 300,
        branching: 3,
        seed: 9,
    });
    let model = tiny_model();
    let options = TrainOptions {
        epochs: 1,
        learning_rate: 5e-3,
        batch_size: 4,
        seq_len: 8,
        max_batches_per_epoch: Some(6),
        seed: 2,
    };
    let mut config = Rt3Config::tiny_test();
    config.candidate_sparsities = 2;
    let mut evaluator = TrainedLmEvaluator::new(model.clone(), corpus.clone(), options.clone());
    let backbone = run_level1(&model, &config, &mut evaluator);
    assert!((0.0..=1.0).contains(&backbone.accuracy));

    let space = build_search_space(&model, &backbone, &config);
    let prunable = model.prunable_parameter_names();
    let level_masks: Vec<_> = space
        .candidates()
        .iter()
        .map(|c| combined_masks_for_model(&model, &backbone.masks, &prunable, &c.set))
        .collect();
    let mut shared = model.clone();
    let report = joint_train_lm(
        &mut shared,
        &corpus,
        &level_masks,
        &vec![1.0 / level_masks.len() as f64; level_masks.len()],
        &options,
    );
    assert_eq!(report.per_level_scores.len(), level_masks.len());
    assert!(report.final_loss.is_finite());
}

#[test]
fn reward_shapes_the_search_away_from_deadline_misses() {
    let params = RewardParams::uniform(3, 0.8, 0.3);
    let miss = compute_reward(
        &params,
        0.97,
        &[0.95, 0.9, 0.85],
        &[200.0, 90.0, 80.0],
        0.5,
        100.0,
    );
    let hit = compute_reward(
        &params,
        0.97,
        &[0.95, 0.9, 0.85],
        &[95.0, 90.0, 80.0],
        0.5,
        100.0,
    );
    assert!(hit.reward > miss.reward + 0.5);
}

#[test]
fn surrogate_evaluator_is_consistent_with_its_profile() {
    let mut evaluator = SurrogateEvaluator::new(TaskProfile::rte());
    let unpruned = evaluator.unpruned_score();
    let pruned = evaluator.evaluate(
        &rt3::transformer::MaskSet::new(),
        &PruningSpec {
            sparsity: 0.6,
            level1_guided: true,
            level2: Some(true),
        },
    );
    assert!(pruned < unpruned);
    assert_eq!(evaluator.task_name(), "RTE");
}
