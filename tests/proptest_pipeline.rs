//! Property-based integration tests over the pruning → hardware pipeline:
//! invariants that must hold for any block size, sparsity target or pattern
//! configuration.

use proptest::prelude::*;
use rt3::core::PruningSpec;
use rt3::core::{compute_reward, RewardParams, TaskProfile};
use rt3::hardware::{number_of_runs, ModelWorkload, PerformancePredictor, PowerModel, VfLevel};
use rt3::pruning::{block_prune_matrix, BlockPruningConfig, PruneCriterion};
use rt3::sparse::SparseFormat;
use rt3::tensor::Matrix;
use rt3::transformer::TransformerConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Algorithm 1 with a `Fraction(f)` criterion prunes at most f of each
    /// block's columns and never a kept column's worth more.
    #[test]
    fn block_pruning_sparsity_tracks_the_requested_fraction(
        rows in 4usize..24,
        cols in 4usize..24,
        blocks in 1usize..4,
        fraction in 0.0f64..0.9,
    ) {
        let m = Matrix::from_fn(rows, cols, |i, j| ((i * 31 + j * 17) % 13) as f32 + 0.5);
        let cfg = BlockPruningConfig {
            num_blocks: blocks.min(rows),
            criterion: PruneCriterion::Fraction(fraction),
        };
        let mask = block_prune_matrix(&m, &cfg);
        let expected = ((cols as f64) * fraction).floor() / cols as f64;
        prop_assert!((mask.sparsity() - expected).abs() < 1e-6,
            "sparsity {} vs expected {}", mask.sparsity(), expected);
    }

    /// The latency predictor is monotone: more sparsity never means more
    /// latency, and a higher frequency never means more latency.
    #[test]
    fn latency_is_monotone_in_sparsity_and_frequency(
        s1 in 0.0f64..0.95,
        s2 in 0.0f64..0.95,
        level_a in 1usize..=6,
        level_b in 1usize..=6,
    ) {
        let config = TransformerConfig::distilbert_full(30522);
        let predictor = PerformancePredictor::cortex_a7();
        let (lo, hi) = if s1 < s2 { (s1, s2) } else { (s2, s1) };
        let level = VfLevel::odroid_level(level_a);
        let w_lo = ModelWorkload::from_config(&config, lo, 32, SparseFormat::BlockPruned);
        let w_hi = ModelWorkload::from_config(&config, hi, 32, SparseFormat::BlockPruned);
        prop_assert!(predictor.latency_ms(&w_hi, &level) <= predictor.latency_ms(&w_lo, &level) + 1e-9);
        let (slow, fast) = if level_a < level_b { (level_a, level_b) } else { (level_b, level_a) };
        let w = ModelWorkload::from_config(&config, lo, 32, SparseFormat::BlockPruned);
        prop_assert!(
            predictor.latency_ms(&w, &VfLevel::odroid_level(fast))
                <= predictor.latency_ms(&w, &VfLevel::odroid_level(slow)) + 1e-9
        );
    }

    /// Number of runs grows with the energy budget and shrinks with latency.
    #[test]
    fn number_of_runs_is_monotone(budget in 1.0f64..10_000.0, latency in 1.0f64..500.0) {
        let power = PowerModel::cortex_a7();
        let level = VfLevel::odroid_level(4);
        let e = power.energy_per_inference_j(&level, latency);
        let runs = number_of_runs(budget, e);
        let runs_more_budget = number_of_runs(budget * 2.0, e);
        let runs_more_latency = number_of_runs(budget, power.energy_per_inference_j(&level, latency * 2.0));
        prop_assert!(runs_more_budget >= runs);
        prop_assert!(runs_more_latency <= runs);
    }

    /// The surrogate accuracy model is monotone in sparsity and never rewards
    /// random pruning over guided pruning.
    #[test]
    fn surrogate_profiles_are_monotone_and_prefer_guided(
        s1 in 0.0f64..0.95,
        s2 in 0.0f64..0.95,
    ) {
        let (lo, hi) = if s1 < s2 { (s1, s2) } else { (s2, s1) };
        for profile in [TaskProfile::wikitext2(), TaskProfile::rte(), TaskProfile::stsb()] {
            let guided_lo = profile.score(&PruningSpec { sparsity: lo, level1_guided: true, level2: Some(true) });
            let guided_hi = profile.score(&PruningSpec { sparsity: hi, level1_guided: true, level2: Some(true) });
            let random_hi = profile.score(&PruningSpec { sparsity: hi, level1_guided: false, level2: Some(false) });
            prop_assert!(guided_hi <= guided_lo + 1e-12);
            prop_assert!(random_hi <= guided_hi + 1e-12);
        }
    }

    /// Eq. (1): meeting every deadline always rewards at least as much as
    /// missing one, for the same accuracies and runs term.
    #[test]
    fn reward_never_prefers_a_deadline_miss(
        acc in 0.81f64..0.99,
        runs_term in 0.0f64..1.0,
        constraint in 50.0f64..200.0,
    ) {
        let params = RewardParams::uniform(2, 0.8, 0.3);
        let accs = [acc, acc - 0.01];
        let hit = compute_reward(&params, 0.99, &accs, &[constraint - 1.0, constraint - 2.0], runs_term, constraint);
        let miss = compute_reward(&params, 0.99, &accs, &[constraint + 1.0, constraint - 2.0], runs_term, constraint);
        prop_assert!(hit.reward >= miss.reward);
    }
}
