//! # rt3
//!
//! Facade crate of the RT3 reproduction ("Dancing along Battery: Enabling
//! Transformer with Run-time Reconfigurability on Mobile Devices", DAC
//! 2021). It re-exports the public API of every subsystem so applications
//! can depend on a single crate:
//!
//! * [`tensor`] — matrices, autograd and optimizers;
//! * [`sparse`] — COO/CSR/block/pattern sparse formats and storage reports;
//! * [`data`] — synthetic WikiText-like and GLUE-like datasets and metrics;
//! * [`transformer`] — the Transformer LM and DistilBERT-style classifier;
//! * [`pruning`] — block-structured pruning and pattern-space generation;
//! * [`hardware`] — DVFS, power/battery, latency prediction, reconfiguration;
//! * [`rl`] — the RNN policy controller;
//! * [`search`] — pluggable Level-2 optimizers (REINFORCE, evolutionary,
//!   bandit, random, exhaustive) behind one trait, with a budget-matched
//!   memoizing search driver;
//! * [`core`] — the two-level RT3 framework, baselines and experiments;
//! * [`runtime`] — the battery-aware online serving engine (model bank,
//!   deadline scheduler, trace-driven scenarios), the fleet layer
//!   (battery-headroom routing across simulated devices) and the chaos
//!   harness (closed-loop retrying clients, compositional fault
//!   scenarios, global invariant checks);
//! * [`server`] — the real-socket serving front-end (rt3-serve): a
//!   length-prefixed binary protocol over `TcpListener`, admission mapped
//!   to explicit reject codes, graceful drain on battery death, read and
//!   write deadlines reaping hung peers, a closed-loop load generator
//!   (bounded outstanding jobs, timeout-retry with backoff) measuring
//!   wall-clock latency, and a seeded fault injector for the server
//!   boundary;
//! * [`telemetry`] — zero-dependency observability primitives: sharded
//!   counters/gauges/streaming histograms, the request-lifecycle trace
//!   ring, the controller decision audit and JSONL export (wired into the
//!   runtime behind `ServeConfig::telemetry` / `FleetConfig::telemetry`).
//!
//! # Examples
//!
//! ```
//! use rt3::core::{run_level1, Rt3Config, SurrogateEvaluator, TaskProfile};
//! use rt3::transformer::{TransformerConfig, TransformerLm};
//!
//! let model = TransformerLm::new(TransformerConfig::tiny(32), 0);
//! let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
//! let backbone = run_level1(&model, &Rt3Config::tiny_test(), &mut evaluator);
//! assert!(backbone.sparsity > 0.0);
//! ```
//!
//! Runnable end-to-end examples live in `examples/` (`quickstart`,
//! `battery_runtime`, `automl_search`, `search_comparison`,
//! `ablation_study`, `serve_trace`, `serve_fleet`, `serve_chaos`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rt3_core as core;

/// Environment-variable helpers shared by the runnable examples (the
/// `RT3_BUDGET` / `RT3_SEED` / `RT3_OPTIMIZER` knobs).
pub mod env {
    /// Reads `name` from the process environment, parsed into `T`;
    /// returns `default` when the variable is unset.
    ///
    /// # Panics
    ///
    /// Panics when the variable is set but does not parse as `T`.
    pub fn parsed<T: std::str::FromStr>(name: &str, default: T) -> T {
        match std::env::var(name) {
            Ok(raw) => raw
                .parse()
                .unwrap_or_else(|_| panic!("{name}={raw:?} could not be parsed")),
            Err(_) => default,
        }
    }
}

pub use rt3_data as data;
pub use rt3_hardware as hardware;
pub use rt3_pruning as pruning;
pub use rt3_rl as rl;
pub use rt3_runtime as runtime;
pub use rt3_search as search;
pub use rt3_server as server;
pub use rt3_sparse as sparse;
pub use rt3_telemetry as telemetry;
pub use rt3_tensor as tensor;
pub use rt3_transformer as transformer;
